//! The six evaluated program behaviours (paper §5.2, Table 1).
//!
//! Concurrency and granularity are set through the stream buffer sizes
//! (§5.1): "Granularity can be changed by the absolute value of M and N.
//! Concurrency can be changed by the relative value of M and N."
//!
//! The buffer sizes are inferred from Table 1's context-switch counts:
//! under high concurrency T6 streams 50 001 dictionary bytes in 50 001 /
//! 12 501 / 3 126 switches — one block per 1 / 4 / 16 bytes — and under
//! low concurrency in 49 switches — one block per ≈1 024 bytes.

use std::fmt;

/// Concurrency level: how many threads are simultaneously active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Concurrency {
    /// M = N: all seven threads interleave densely.
    High,
    /// M ≫ N: the kernel threads run in long bursts, so mostly the three
    /// filter threads interleave.
    Low,
}

impl Concurrency {
    /// Both levels, high first (paper order).
    pub const ALL: [Concurrency; 2] = [Concurrency::High, Concurrency::Low];
}

impl fmt::Display for Concurrency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Concurrency::High => "high",
            Concurrency::Low => "low",
        })
    }
}

/// Granularity level: run length between context switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Granularity {
    /// 16-byte N buffers.
    Coarse,
    /// 4-byte N buffers.
    Medium,
    /// 1-byte N buffers — a context switch on almost every transfer.
    Fine,
}

impl Granularity {
    /// All levels, coarse first (paper order).
    pub const ALL: [Granularity; 3] = [Granularity::Coarse, Granularity::Medium, Granularity::Fine];

    /// The N (word-stream) buffer size in bytes.
    pub fn n_bytes(self) -> usize {
        match self {
            Granularity::Coarse => 16,
            Granularity::Medium => 4,
            Granularity::Fine => 1,
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Granularity::Coarse => "coarse",
            Granularity::Medium => "medium",
            Granularity::Fine => "fine",
        })
    }
}

/// One of the six evaluated behaviours: a concurrency × granularity pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Behavior {
    /// The concurrency level.
    pub concurrency: Concurrency,
    /// The granularity level.
    pub granularity: Granularity,
}

impl Behavior {
    /// All six behaviours in Table 1's column order (high concurrency
    /// coarse→fine, then low concurrency coarse→fine).
    pub const ALL: [Behavior; 6] = [
        Behavior { concurrency: Concurrency::High, granularity: Granularity::Coarse },
        Behavior { concurrency: Concurrency::High, granularity: Granularity::Medium },
        Behavior { concurrency: Concurrency::High, granularity: Granularity::Fine },
        Behavior { concurrency: Concurrency::Low, granularity: Granularity::Coarse },
        Behavior { concurrency: Concurrency::Low, granularity: Granularity::Medium },
        Behavior { concurrency: Concurrency::Low, granularity: Granularity::Fine },
    ];

    /// Creates a behaviour.
    pub fn new(concurrency: Concurrency, granularity: Granularity) -> Self {
        Behavior { concurrency, granularity }
    }

    /// The three high-concurrency behaviours (Figures 11–13, 15).
    pub fn high_concurrency() -> [Behavior; 3] {
        [Behavior::ALL[0], Behavior::ALL[1], Behavior::ALL[2]]
    }

    /// The three low-concurrency behaviours (Figure 14).
    pub fn low_concurrency() -> [Behavior; 3] {
        [Behavior::ALL[3], Behavior::ALL[4], Behavior::ALL[5]]
    }

    /// The (M, N) buffer sizes in bytes.
    pub fn buffers(&self) -> (usize, usize) {
        let n = self.granularity.n_bytes();
        let m = match self.concurrency {
            Concurrency::High => n,
            Concurrency::Low => 1024,
        };
        (m, n)
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.concurrency, self.granularity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_concurrency_means_m_equals_n() {
        for g in Granularity::ALL {
            let (m, n) = Behavior::new(Concurrency::High, g).buffers();
            assert_eq!(m, n);
        }
    }

    #[test]
    fn low_concurrency_means_big_m() {
        for g in Granularity::ALL {
            let (m, n) = Behavior::new(Concurrency::Low, g).buffers();
            assert_eq!(m, 1024);
            assert_eq!(n, g.n_bytes());
        }
    }

    #[test]
    fn finer_granularity_means_smaller_n() {
        assert!(Granularity::Fine.n_bytes() < Granularity::Medium.n_bytes());
        assert!(Granularity::Medium.n_bytes() < Granularity::Coarse.n_bytes());
    }

    #[test]
    fn all_six_behaviours_are_distinct() {
        let mut set = std::collections::HashSet::new();
        for b in Behavior::ALL {
            assert!(set.insert(b.buffers()));
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Behavior::ALL[2].to_string(), "high/fine");
        assert_eq!(Behavior::ALL[3].to_string(), "low/coarse");
    }
}
