//! Run matrices: execute the spell checker across (behaviour × scheme ×
//! window count × policy) combinations, in parallel across OS threads.

use crate::behavior::Behavior;
use regwin_machine::{SchemeKind, TimingKind};
use regwin_rt::{RtError, RunReport, SchedulingPolicy};
use regwin_spell::{Corpus, CorpusSpec, SpellConfig, SpellPipeline};
use std::sync::Mutex;

/// One cell of a run matrix.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The behaviour (buffer configuration) of the run.
    pub behavior: Behavior,
    /// The window-management scheme.
    pub scheme: SchemeKind,
    /// Physical window count.
    pub nwindows: usize,
    /// Scheduling policy.
    pub policy: SchedulingPolicy,
    /// The run's full report.
    pub report: RunReport,
}

/// What to run: the cross product of behaviours, schemes and window
/// counts over one corpus under one scheduling policy.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Corpus dimensions (one corpus is generated and shared).
    pub corpus: CorpusSpec,
    /// Behaviours to run.
    pub behaviors: Vec<Behavior>,
    /// Schemes to run.
    pub schemes: Vec<SchemeKind>,
    /// Window counts to sweep.
    pub windows: Vec<usize>,
    /// Scheduling policy.
    pub policy: SchedulingPolicy,
    /// Timing backend every cell charges cycles under.
    pub timing: TimingKind,
}

impl MatrixSpec {
    /// The window sweep the paper's figures use (4 to 32).
    pub fn paper_window_sweep() -> Vec<usize> {
        vec![4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 28, 32]
    }

    /// A reduced sweep for quick runs and tests.
    pub fn quick_window_sweep() -> Vec<usize> {
        vec![4, 6, 8, 12, 16, 24, 32]
    }

    /// Replaces the timing backend.
    #[must_use]
    pub fn with_timing(mut self, timing: TimingKind) -> Self {
        self.timing = timing;
        self
    }

    /// Number of runs this spec describes.
    pub fn len(&self) -> usize {
        self.behaviors.len() * self.schemes.len() * self.windows.len()
    }

    /// Whether the spec describes no runs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Executes every run in `spec`, distributing work across OS threads
/// (each simulation is itself deterministic; the records are returned in
/// a deterministic order regardless of completion order). `progress` is
/// invoked once per completed cell with `(done, total)`.
///
/// Under FIFO scheduling the window-event trace of a run depends only on
/// the buffer configuration (paper §5.2), so the matrix is computed the
/// way the paper's register-window emulator works: one recorded execution
/// per behaviour, replayed for every (scheme × window count) cell — with
/// exact equality to direct runs guaranteed by the replay test suite.
/// Other policies (working set) make the schedule window-dependent, so
/// every cell runs directly.
///
/// # Errors
///
/// Returns the first run error encountered.
pub fn run_matrix(
    spec: &MatrixSpec,
    progress: impl Fn(usize, usize) + Sync,
) -> Result<Vec<RunRecord>, RtError> {
    if spec.policy == SchedulingPolicy::Fifo {
        run_matrix_replayed(spec, progress)
    } else {
        run_matrix_direct(spec, progress)
    }
}

/// The replay-based FIFO fast path: record once per behaviour, replay
/// each cell.
fn run_matrix_replayed(
    spec: &MatrixSpec,
    progress: impl Fn(usize, usize) + Sync,
) -> Result<Vec<RunRecord>, RtError> {
    use regwin_machine::MachineConfig;
    use regwin_rt::Trace;
    use regwin_traps::build_scheme;

    let corpus = Corpus::generate(&spec.corpus);

    // Phase 1: one recorded execution per behaviour, in parallel.
    let traces: Mutex<Vec<Option<Trace>>> = Mutex::new(vec![None; spec.behaviors.len()]);
    let error: Mutex<Option<RtError>> = Mutex::new(None);
    let next_b = Mutex::new(0usize);
    std::thread::scope(|scope| {
        for _ in 0..spec.behaviors.len().min(worker_count(spec.behaviors.len())) {
            scope.spawn(|| loop {
                let idx = {
                    let mut n = next_b.lock().expect("queue poisoned");
                    if *n >= spec.behaviors.len() || error.lock().expect("err").is_some() {
                        return;
                    }
                    let i = *n;
                    *n += 1;
                    i
                };
                let behavior = spec.behaviors[idx];
                let (m, n_buf) = behavior.buffers();
                let config = SpellConfig::new(spec.corpus, m, n_buf)
                    .with_policy(spec.policy)
                    .with_timing(spec.timing);
                let pipeline = SpellPipeline::with_corpus(corpus.clone(), config);
                match pipeline.run_traced(8, SchemeKind::Sp) {
                    Ok((_, trace)) => {
                        traces.lock().expect("traces poisoned")[idx] = Some(trace);
                    }
                    Err(e) => {
                        let mut slot = error.lock().expect("err poisoned");
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = error.into_inner().expect("err poisoned") {
        return Err(e);
    }
    let traces: Vec<Trace> = traces
        .into_inner()
        .expect("traces poisoned")
        .into_iter()
        .map(|t| t.expect("recorded"))
        .collect();

    // Phase 2: replay every cell, in parallel.
    let mut cells = Vec::new();
    for (bi, &behavior) in spec.behaviors.iter().enumerate() {
        for &scheme in &spec.schemes {
            for &nwindows in &spec.windows {
                cells.push((bi, behavior, scheme, nwindows));
            }
        }
    }
    let total = cells.len();
    let next = Mutex::new(0usize);
    let done = Mutex::new(0usize);
    let results: Mutex<Vec<Option<RunRecord>>> = Mutex::new(vec![None; total]);
    let error: Mutex<Option<RtError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..worker_count(total) {
            scope.spawn(|| loop {
                let idx = {
                    let mut n = next.lock().expect("queue poisoned");
                    if *n >= total || error.lock().expect("err").is_some() {
                        return;
                    }
                    let i = *n;
                    *n += 1;
                    i
                };
                let (bi, behavior, scheme, nwindows) = cells[idx];
                let config = MachineConfig::new(nwindows).with_timing(spec.timing);
                match traces[bi].replay(config, build_scheme(scheme)) {
                    Ok(report) => {
                        results.lock().expect("results poisoned")[idx] = Some(RunRecord {
                            behavior,
                            scheme,
                            nwindows,
                            policy: spec.policy,
                            report,
                        });
                        let mut d = done.lock().expect("done poisoned");
                        *d += 1;
                        progress(*d, total);
                    }
                    Err(e) => {
                        let mut slot = error.lock().expect("err poisoned");
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = error.into_inner().expect("err poisoned") {
        return Err(e);
    }
    Ok(results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("all cells completed"))
        .collect())
}

fn worker_count(work: usize) -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(work.max(1))
}

/// The direct path: one full simulation per cell.
fn run_matrix_direct(
    spec: &MatrixSpec,
    progress: impl Fn(usize, usize) + Sync,
) -> Result<Vec<RunRecord>, RtError> {
    let corpus = Corpus::generate(&spec.corpus);
    let mut cells = Vec::new();
    for &behavior in &spec.behaviors {
        for &scheme in &spec.schemes {
            for &nwindows in &spec.windows {
                cells.push((behavior, scheme, nwindows));
            }
        }
    }
    let total = cells.len();
    let next = Mutex::new(0usize);
    let done = Mutex::new(0usize);
    let results: Mutex<Vec<Option<RunRecord>>> = Mutex::new(vec![None; total]);
    let error: Mutex<Option<RtError>> = Mutex::new(None);

    let workers = worker_count(total);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = {
                    let mut n = next.lock().expect("queue poisoned");
                    if *n >= total || error.lock().expect("err poisoned").is_some() {
                        return;
                    }
                    let i = *n;
                    *n += 1;
                    i
                };
                let (behavior, scheme, nwindows) = cells[idx];
                let (m, n_buf) = behavior.buffers();
                let config = SpellConfig::new(spec.corpus, m, n_buf)
                    .with_policy(spec.policy)
                    .with_timing(spec.timing);
                let pipeline = SpellPipeline::with_corpus(corpus.clone(), config);
                match pipeline.run(nwindows, scheme) {
                    Ok(outcome) => {
                        results.lock().expect("results poisoned")[idx] = Some(RunRecord {
                            behavior,
                            scheme,
                            nwindows,
                            policy: spec.policy,
                            report: outcome.report,
                        });
                        let mut d = done.lock().expect("done poisoned");
                        *d += 1;
                        progress(*d, total);
                    }
                    Err(e) => {
                        let mut slot = error.lock().expect("err poisoned");
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner().expect("err poisoned") {
        return Err(e);
    }
    Ok(results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("all cells completed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{Concurrency, Granularity};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matrix_runs_every_cell_in_order() {
        let spec = MatrixSpec {
            corpus: CorpusSpec::small(),
            behaviors: vec![Behavior::new(Concurrency::High, Granularity::Medium)],
            schemes: vec![SchemeKind::Ns, SchemeKind::Sp],
            windows: vec![4, 8],
            policy: SchedulingPolicy::Fifo,
            timing: TimingKind::S20,
        };
        assert_eq!(spec.len(), 4);
        let calls = AtomicUsize::new(0);
        let records = run_matrix(&spec, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        // Deterministic ordering: behaviour-major, then scheme, then windows.
        assert_eq!(records[0].scheme, SchemeKind::Ns);
        assert_eq!(records[0].nwindows, 4);
        assert_eq!(records[1].nwindows, 8);
        assert_eq!(records[2].scheme, SchemeKind::Sp);
    }

    #[test]
    fn parallel_matrix_equals_individual_runs() {
        let spec = MatrixSpec {
            corpus: CorpusSpec::small(),
            behaviors: vec![Behavior::new(Concurrency::High, Granularity::Fine)],
            schemes: vec![SchemeKind::Snp],
            windows: vec![6],
            policy: SchedulingPolicy::Fifo,
            timing: TimingKind::S20,
        };
        let records = run_matrix(&spec, |_, _| {}).unwrap();
        let config = SpellConfig::new(spec.corpus, 1, 1);
        let direct = SpellPipeline::new(config).run(6, SchemeKind::Snp).unwrap();
        assert_eq!(records[0].report.total_cycles(), direct.report.total_cycles());
        assert_eq!(records[0].report.stats.context_switches, direct.report.stats.context_switches);
    }
}
