//! # regwin-core
//!
//! Experiment drivers reproducing the evaluation of *"Multiple Threads in
//! Cyclic Register Windows"* (Hidaka, Koike, Tanaka — ISCA 1993):
//! every table and figure of §5–§6, driven over the `regwin-spell`
//! workload on the `regwin-rt`/`regwin-traps`/`regwin-machine` stack.
//!
//! | Exhibit | Driver | What it reproduces |
//! |---------|--------|--------------------|
//! | Table 1 | [`figures::table1`] | context switches per thread for six behaviours + dynamic save counts |
//! | Table 2 | [`figures::table2`] | cycles per context switch, per scheme and transfer shape |
//! | Fig 11  | [`figures::fig11`]  | execution time vs #windows, high concurrency |
//! | Fig 12  | [`figures::fig12`]  | average context-switch time vs #windows |
//! | Fig 13  | [`figures::fig13`]  | window-trap probability vs #windows |
//! | Fig 14  | [`figures::fig14`]  | execution time vs #windows, low concurrency |
//! | Fig 15  | [`figures::fig15`]  | execution time with working-set scheduling |
//!
//! ```rust
//! use regwin_core::{Behavior, Concurrency, Granularity};
//!
//! let b = Behavior::new(Concurrency::High, Granularity::Fine);
//! assert_eq!(b.buffers(), (1, 1)); // M = N = 1 byte
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod ablations;
pub mod activity;
mod behavior;
pub mod chart;
pub mod figures;
mod matrix;
pub mod report;
pub mod synthetic;
pub mod timeline;
pub mod tradeoff;

pub use behavior::{Behavior, Concurrency, Granularity};
pub use matrix::{run_matrix, MatrixSpec, RunRecord};
pub use report::{Series, TextTable};

pub use regwin_machine::{SchemeKind, TimingKind};
pub use regwin_rt::SchedulingPolicy;
pub use regwin_spell::CorpusSpec;
