//! Drivers for every table and figure in the paper's evaluation.

use crate::behavior::{Behavior, Concurrency, Granularity};
use crate::matrix::{run_matrix, MatrixSpec, RunRecord};
use crate::report::{series_table, Series, TextTable};
use regwin_machine::{CostModel, SchemeKind, SwitchShape, TimingKind};
use regwin_rt::{RtError, SchedulingPolicy};
use regwin_spell::CorpusSpec;

/// A reproduced figure: its series plus a rendered text table.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// The exhibit name, e.g. `"Figure 11"`.
    pub title: String,
    /// One series per (scheme, granularity) line of the original plot.
    pub series: Vec<Series>,
    /// The series rendered as a window-count × series table.
    pub table: TextTable,
}

impl FigureResult {
    /// Finds a series by its label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

/// A completed sweep over (behaviour × scheme × window count), from which
/// Figures 11–15 are all derived. The paper derives Figures 12 and 13
/// from the same runs as Figure 11; so does this.
#[derive(Debug, Clone)]
pub struct Sweep {
    records: Vec<RunRecord>,
}

impl Sweep {
    /// The matrix behind the high-concurrency sweep (Figures 11–13 with
    /// [`SchedulingPolicy::Fifo`], Figure 15 with
    /// [`SchedulingPolicy::WorkingSet`]). Execute it with
    /// [`run_matrix`] or an external engine, then assemble with
    /// [`Sweep::from_records`].
    pub fn high_spec(
        corpus: CorpusSpec,
        windows: &[usize],
        policy: SchedulingPolicy,
    ) -> MatrixSpec {
        MatrixSpec {
            corpus,
            behaviors: Behavior::high_concurrency().to_vec(),
            schemes: SchemeKind::ALL.to_vec(),
            windows: windows.to_vec(),
            policy,
            timing: TimingKind::S20,
        }
    }

    /// The matrix behind the low-concurrency sweep (Figure 14).
    pub fn low_spec(corpus: CorpusSpec, windows: &[usize], policy: SchedulingPolicy) -> MatrixSpec {
        MatrixSpec {
            behaviors: Behavior::low_concurrency().to_vec(),
            ..Self::high_spec(corpus, windows, policy)
        }
    }

    /// Wraps already-executed records (from [`run_matrix`] or the sweep
    /// engine) as a sweep.
    pub fn from_records(records: Vec<RunRecord>) -> Self {
        Sweep { records }
    }

    /// Runs the high-concurrency sweep (Figures 11–13 with
    /// [`SchedulingPolicy::Fifo`], Figure 15 with
    /// [`SchedulingPolicy::WorkingSet`]).
    ///
    /// # Errors
    ///
    /// Propagates the first failed run.
    pub fn high(
        corpus: CorpusSpec,
        windows: &[usize],
        policy: SchedulingPolicy,
        progress: impl Fn(usize, usize) + Sync,
    ) -> Result<Self, RtError> {
        Ok(Self::from_records(run_matrix(&Self::high_spec(corpus, windows, policy), progress)?))
    }

    /// Runs the low-concurrency sweep (Figure 14).
    ///
    /// # Errors
    ///
    /// Propagates the first failed run.
    pub fn low(
        corpus: CorpusSpec,
        windows: &[usize],
        policy: SchedulingPolicy,
        progress: impl Fn(usize, usize) + Sync,
    ) -> Result<Self, RtError> {
        Ok(Self::from_records(run_matrix(&Self::low_spec(corpus, windows, policy), progress)?))
    }

    /// The raw run records.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    fn series_of(&self, value: impl Fn(&RunRecord) -> f64) -> Vec<Series> {
        let mut series: Vec<Series> = Vec::new();
        for r in &self.records {
            let label = format!("{} {}", r.scheme, r.behavior.granularity);
            let s = match series.iter_mut().find(|s| s.label == label) {
                Some(s) => s,
                None => {
                    series.push(Series::new(label));
                    series.last_mut().expect("just pushed")
                }
            };
            s.push(r.nwindows, value(r));
        }
        series
    }

    /// Execution time in simulated cycles (Figures 11, 14, 15).
    pub fn execution_time_series(&self) -> Vec<Series> {
        self.series_of(|r| r.report.total_cycles() as f64)
    }

    /// Average context-switch cycles (Figure 12).
    pub fn avg_switch_series(&self) -> Vec<Series> {
        self.series_of(|r| r.report.avg_switch_cycles())
    }

    /// Window-trap probability (Figure 13).
    pub fn trap_probability_series(&self) -> Vec<Series> {
        self.series_of(|r| r.report.trap_probability())
    }
}

// --------------------------------------------------------------------
// Table 1
// --------------------------------------------------------------------

/// The reproduced Table 1 data.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Rendered table: one row per thread plus a total row; one column
    /// per behaviour plus the dynamic save count.
    pub table: TextTable,
    /// Context switches per thread (outer: thread, inner: behaviour in
    /// [`Behavior::ALL`] order).
    pub switch_counts: Vec<Vec<u64>>,
    /// Dynamic `save` counts per thread (behaviour-independent).
    pub save_counts: Vec<u64>,
    /// Thread names.
    pub thread_names: Vec<String>,
}

impl Table1Result {
    /// Total context switches per behaviour.
    pub fn totals(&self) -> Vec<u64> {
        let nbehaviors = Behavior::ALL.len();
        (0..nbehaviors).map(|b| self.switch_counts.iter().map(|row| row[b]).sum()).collect()
    }
}

/// The matrix behind Table 1: one run per behaviour. The switch counts
/// are scheme-independent (§5.2), so a single scheme suffices.
pub fn table1_spec(corpus: CorpusSpec) -> MatrixSpec {
    MatrixSpec {
        corpus,
        behaviors: Behavior::ALL.to_vec(),
        schemes: vec![SchemeKind::Sp],
        windows: vec![8],
        policy: SchedulingPolicy::Fifo,
        timing: TimingKind::S20,
    }
}

/// Reproduces Table 1: per-thread context-switch counts for the six
/// behaviours under FIFO scheduling, plus dynamic `save` counts. The
/// counts are scheme-independent (§5.2), so a single scheme is run.
///
/// # Errors
///
/// Propagates the first failed run.
pub fn table1(
    corpus: CorpusSpec,
    progress: impl Fn(usize, usize) + Sync,
) -> Result<Table1Result, RtError> {
    table1_from_records(&run_matrix(&table1_spec(corpus), progress)?)
}

/// Assembles Table 1 from already-executed [`table1_spec`] records.
/// Records are matched to behaviours by identity, not position, so the
/// input order does not matter.
///
/// # Errors
///
/// Returns [`RtError::MissingRecord`] if any behaviour of
/// [`Behavior::ALL`] has no record — e.g. because the sweep engine
/// quarantined that cell — rather than silently shifting the remaining
/// counts into the wrong columns.
pub fn table1_from_records(records: &[RunRecord]) -> Result<Table1Result, RtError> {
    let by_behavior: Vec<&RunRecord> = Behavior::ALL
        .iter()
        .map(|&b| {
            records.iter().find(|r| r.behavior == b).ok_or_else(|| RtError::MissingRecord {
                detail: format!("table 1: no record for behaviour '{b}' (cell quarantined?)"),
            })
        })
        .collect::<Result<_, _>>()?;
    let first = by_behavior[0];
    let nthreads = first.report.threads.len();
    let thread_names: Vec<String> = first.report.threads.iter().map(|t| t.name.clone()).collect();
    let mut switch_counts = vec![vec![0u64; Behavior::ALL.len()]; nthreads];
    let mut save_counts = vec![0u64; nthreads];
    for (b, record) in by_behavior.iter().enumerate() {
        for (t, tr) in record.report.threads.iter().enumerate() {
            switch_counts[t][b] = tr.context_switches;
            save_counts[t] = tr.saves; // identical across behaviours
        }
    }

    let mut headers = vec!["thread"];
    let behavior_names: Vec<String> = Behavior::ALL.iter().map(|b| b.to_string()).collect();
    headers.extend(behavior_names.iter().map(String::as_str));
    headers.push("saves");
    let mut table = TextTable::new(
        "Table 1: context switches per thread (FIFO) and dynamic save counts",
        &headers,
    );
    for t in 0..nthreads {
        let mut row = vec![thread_names[t].clone()];
        row.extend(switch_counts[t].iter().map(u64::to_string));
        row.push(save_counts[t].to_string());
        table.row(row);
    }
    let result = Table1Result { table, switch_counts, save_counts, thread_names };
    let mut total_row = vec!["Total".to_string()];
    total_row.extend(result.totals().iter().map(u64::to_string));
    total_row.push(result.save_counts.iter().sum::<u64>().to_string());
    let mut table = result.table.clone();
    table.row(total_row);
    Ok(Table1Result { table, ..result })
}

// --------------------------------------------------------------------
// Table 2
// --------------------------------------------------------------------

/// The paper's measured context-switch cycle ranges (Table 2).
pub const PAPER_TABLE2: &[(SchemeKind, usize, usize, u64, u64)] = &[
    (SchemeKind::Ns, 1, 1, 145, 149),
    (SchemeKind::Ns, 2, 1, 181, 185),
    (SchemeKind::Ns, 3, 1, 217, 221),
    (SchemeKind::Ns, 4, 1, 253, 257),
    (SchemeKind::Ns, 5, 1, 289, 293),
    (SchemeKind::Ns, 6, 1, 325, 329),
    (SchemeKind::Snp, 0, 0, 113, 118),
    (SchemeKind::Snp, 0, 1, 142, 147),
    (SchemeKind::Snp, 1, 0, 162, 171),
    (SchemeKind::Snp, 1, 1, 187, 196),
    (SchemeKind::Sp, 0, 0, 93, 98),
    (SchemeKind::Sp, 0, 1, 136, 141),
    (SchemeKind::Sp, 1, 1, 180, 197),
    (SchemeKind::Sp, 2, 1, 220, 237),
];

/// The reproduced Table 2 data.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// Model-derived cost per (scheme, saves, restores) beside the
    /// paper's measured range.
    pub table: TextTable,
    /// Whether every modelled cost lies inside the paper's range.
    pub all_in_range: bool,
    /// Observed switch-shape histogram per scheme from an actual run.
    pub observed: TextTable,
}

/// The matrix behind Table 2's observed-shapes section: one M=N=4-byte
/// (high/medium) run per scheme on 8 windows.
pub fn table2_observed_spec(corpus: CorpusSpec) -> MatrixSpec {
    MatrixSpec {
        corpus,
        behaviors: vec![Behavior::new(Concurrency::High, Granularity::Medium)],
        schemes: SchemeKind::ALL.to_vec(),
        windows: vec![8],
        policy: SchedulingPolicy::Fifo,
        timing: TimingKind::S20,
    }
}

/// Reproduces Table 2: the calibrated cost model's cycles per context
/// switch for each transfer shape, checked against the paper's measured
/// ranges, plus the shapes *observed* in an actual spell-checker run
/// (confirming each scheme really performs the transfers the paper
/// tabulates).
///
/// # Errors
///
/// Propagates the first failed run.
pub fn table2(corpus: CorpusSpec) -> Result<Table2Result, RtError> {
    Ok(table2_from_records(&run_matrix(&table2_observed_spec(corpus), |_, _| {})?))
}

/// Assembles Table 2 from already-executed [`table2_observed_spec`]
/// records. The model-vs-paper section needs no simulation at all; the
/// records feed only the observed-shapes histogram.
pub fn table2_from_records(records: &[RunRecord]) -> Table2Result {
    let model = CostModel::s20();
    let mut table = TextTable::new(
        "Table 2: cycles per context switch (model vs paper measurement)",
        &["scheme", "saves", "restores", "model", "paper", "in range"],
    );
    let mut all_in_range = true;
    for &(scheme, saves, restores, lo, hi) in PAPER_TABLE2 {
        let cycles = model.switch_cost(scheme).cycles(saves, restores);
        let ok = (lo..=hi).contains(&cycles);
        all_in_range &= ok;
        table.row(vec![
            scheme.to_string(),
            saves.to_string(),
            restores.to_string(),
            cycles.to_string(),
            format!("{lo}-{hi}"),
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }

    // Observed shapes: one record per scheme on 8 windows.
    let mut observed = TextTable::new(
        "Observed context-switch transfer shapes (spell checker, 8 windows)",
        &["scheme", "(saves,restores)", "count", "share"],
    );
    for record in records {
        let total: u64 = record.report.stats.switch_shapes.values().sum();
        let mut shapes: Vec<(&SwitchShape, &u64)> =
            record.report.stats.switch_shapes.iter().collect();
        shapes.sort_by_key(|(s, _)| (s.saves, s.restores));
        for (shape, count) in shapes {
            observed.row(vec![
                record.scheme.to_string(),
                format!("({},{})", shape.saves, shape.restores),
                count.to_string(),
                format!("{:.1}%", 100.0 * *count as f64 / total as f64),
            ]);
        }
    }
    Table2Result { table, all_in_range, observed }
}

// --------------------------------------------------------------------
// Figures 11–15
// --------------------------------------------------------------------

/// Which sweep-derived figure of the paper an exhibit reproduces. All
/// five share the same structure — a [`MatrixSpec`] sweep plus one
/// metric — and differ only in the data below, so drivers can be fully
/// generic over the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureId {
    /// Execution time, high concurrency, FIFO.
    Fig11,
    /// Average context-switch time, high concurrency, FIFO.
    Fig12,
    /// Window-trap probability, high concurrency, FIFO.
    Fig13,
    /// Execution time, low concurrency, FIFO.
    Fig14,
    /// Execution time, high concurrency, working-set scheduling (§4.6).
    Fig15,
}

impl FigureId {
    /// All five figures, in paper order.
    pub const ALL: [FigureId; 5] =
        [FigureId::Fig11, FigureId::Fig12, FigureId::Fig13, FigureId::Fig14, FigureId::Fig15];

    /// The short name used for CSV files, e.g. `"fig11"`.
    pub fn csv_name(self) -> &'static str {
        match self {
            FigureId::Fig11 => "fig11",
            FigureId::Fig12 => "fig12",
            FigureId::Fig13 => "fig13",
            FigureId::Fig14 => "fig14",
            FigureId::Fig15 => "fig15",
        }
    }

    /// The exhibit title.
    pub fn title(self) -> &'static str {
        match self {
            FigureId::Fig11 => "Figure 11: execution time at high concurrency (FIFO)",
            FigureId::Fig12 => "Figure 12: average context-switch cycles at high concurrency",
            FigureId::Fig13 => "Figure 13: probability of window traps at high concurrency",
            FigureId::Fig14 => "Figure 14: execution time at low concurrency (FIFO)",
            FigureId::Fig15 => {
                "Figure 15: execution time at high concurrency (working-set scheduling)"
            }
        }
    }

    /// The metric's display name.
    pub fn value_name(self) -> &'static str {
        match self {
            FigureId::Fig11 | FigureId::Fig14 | FigureId::Fig15 => "cycles",
            FigureId::Fig12 => "cycles/switch",
            FigureId::Fig13 => "traps per save/restore",
        }
    }

    /// The matrix this figure needs. Figures 11–13 share one spec, so
    /// they share one sweep (and, through the sweep engine, one set of
    /// cached runs).
    pub fn spec(self, corpus: CorpusSpec, windows: &[usize]) -> MatrixSpec {
        match self {
            FigureId::Fig11 | FigureId::Fig12 | FigureId::Fig13 => {
                Sweep::high_spec(corpus, windows, SchedulingPolicy::Fifo)
            }
            FigureId::Fig14 => Sweep::low_spec(corpus, windows, SchedulingPolicy::Fifo),
            FigureId::Fig15 => Sweep::high_spec(corpus, windows, SchedulingPolicy::WorkingSet),
        }
    }

    /// Assembles the figure from an executed sweep of [`FigureId::spec`].
    pub fn from_sweep(self, sweep: &Sweep) -> FigureResult {
        let series = match self {
            FigureId::Fig11 | FigureId::Fig14 | FigureId::Fig15 => sweep.execution_time_series(),
            FigureId::Fig12 => sweep.avg_switch_series(),
            FigureId::Fig13 => sweep.trap_probability_series(),
        };
        figure(self.title(), self.value_name(), series)
    }

    /// Runs the figure's sweep and assembles the result.
    ///
    /// # Errors
    ///
    /// Propagates the first failed run.
    pub fn run(
        self,
        corpus: CorpusSpec,
        windows: &[usize],
        progress: impl Fn(usize, usize) + Sync,
    ) -> Result<FigureResult, RtError> {
        let records = run_matrix(&self.spec(corpus, windows), progress)?;
        Ok(self.from_sweep(&Sweep::from_records(records)))
    }
}

/// Figure 11: execution time vs window count, high concurrency, FIFO.
///
/// # Errors
///
/// Propagates the first failed run.
pub fn fig11(
    corpus: CorpusSpec,
    windows: &[usize],
    progress: impl Fn(usize, usize) + Sync,
) -> Result<FigureResult, RtError> {
    FigureId::Fig11.run(corpus, windows, progress)
}

/// Figure 12: average context-switch time vs window count, high
/// concurrency, FIFO.
///
/// # Errors
///
/// Propagates the first failed run.
pub fn fig12(
    corpus: CorpusSpec,
    windows: &[usize],
    progress: impl Fn(usize, usize) + Sync,
) -> Result<FigureResult, RtError> {
    FigureId::Fig12.run(corpus, windows, progress)
}

/// Figure 13: window-trap probability vs window count, high concurrency.
///
/// # Errors
///
/// Propagates the first failed run.
pub fn fig13(
    corpus: CorpusSpec,
    windows: &[usize],
    progress: impl Fn(usize, usize) + Sync,
) -> Result<FigureResult, RtError> {
    FigureId::Fig13.run(corpus, windows, progress)
}

/// Figure 14: execution time vs window count, low concurrency, FIFO.
///
/// # Errors
///
/// Propagates the first failed run.
pub fn fig14(
    corpus: CorpusSpec,
    windows: &[usize],
    progress: impl Fn(usize, usize) + Sync,
) -> Result<FigureResult, RtError> {
    FigureId::Fig14.run(corpus, windows, progress)
}

/// Figure 15: execution time vs window count, high concurrency, with the
/// working-set scheduling of §4.6.
///
/// # Errors
///
/// Propagates the first failed run.
pub fn fig15(
    corpus: CorpusSpec,
    windows: &[usize],
    progress: impl Fn(usize, usize) + Sync,
) -> Result<FigureResult, RtError> {
    FigureId::Fig15.run(corpus, windows, progress)
}

/// Assembles a [`FigureResult`] from ready-made series — the last step
/// of every `figNN` driver, usable directly with sweeps executed by an
/// external engine.
pub fn figure(title: &str, value_name: &str, series: Vec<Series>) -> FigureResult {
    let table = series_table(title, value_name, &series);
    FigureResult { title: title.to_string(), series, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(_d: usize, _t: usize) {}

    #[test]
    fn table2_model_is_fully_in_range() {
        let r = table2(CorpusSpec::small()).unwrap();
        assert!(r.all_in_range, "\n{}", r.table);
        assert!(!r.observed.is_empty());
    }

    #[test]
    fn table1_counts_are_plausible() {
        let r = table1(CorpusSpec::small(), quiet).unwrap();
        assert_eq!(r.thread_names.len(), 7);
        // Finer granularity ⇒ more switches, per concurrency level.
        let totals = r.totals();
        assert!(totals[2] > totals[1], "high fine {} > high medium {}", totals[2], totals[1]);
        assert!(totals[1] > totals[0], "high medium > high coarse");
        assert!(totals[5] > totals[4], "low fine > low medium");
        // High concurrency switches more than low at equal granularity.
        assert!(totals[0] > totals[3]);
        // Save counts are nonzero for every thread.
        assert!(r.save_counts.iter().all(|&s| s > 0));
    }

    #[test]
    fn table1_assembly_is_order_independent_and_rejects_gaps() {
        let records = run_matrix(&table1_spec(CorpusSpec::small()), quiet).unwrap();
        let direct = table1_from_records(&records).unwrap();

        // Identity-keyed assembly: shuffling the records changes nothing.
        let mut reversed = records.clone();
        reversed.reverse();
        let from_reversed = table1_from_records(&reversed).unwrap();
        assert_eq!(direct.switch_counts, from_reversed.switch_counts);
        assert_eq!(direct.save_counts, from_reversed.save_counts);

        // A gap (e.g. a quarantined sweep cell) is a typed error naming
        // the missing behaviour, never a silently shifted table.
        let mut gapped = records.clone();
        let dropped = gapped.remove(2);
        let err = table1_from_records(&gapped).unwrap_err();
        assert!(matches!(err, RtError::MissingRecord { .. }), "{err}");
        assert!(err.to_string().contains(&dropped.behavior.to_string()), "{err}");
        assert!(table1_from_records(&[]).is_err());
    }

    #[test]
    fn fig11_small_sweep_has_nine_series() {
        let r = fig11(CorpusSpec::small(), &[4, 8, 16], quiet).unwrap();
        assert_eq!(r.series.len(), 9, "3 schemes × 3 granularities");
        for s in &r.series {
            assert_eq!(s.points.len(), 3);
        }
        assert!(r.series_by_label("SP fine").is_some());
    }

    #[test]
    fn fig13_probabilities_are_probabilities() {
        let r = fig13(CorpusSpec::small(), &[4, 16], quiet).unwrap();
        for s in &r.series {
            for (_, p) in &s.points {
                assert!((0.0..=1.0).contains(p), "{} has p={p}", s.label);
            }
        }
    }
}
