//! Terminal line charts for the reproduced figures.
//!
//! The repro binaries print each figure both as a numeric table and as an
//! ASCII chart, so the shapes the paper plots are visible directly in the
//! terminal output.

use crate::report::Series;

/// Glyphs assigned to series, in order.
const GLYPHS: &[char] = &['o', '+', 'x', '*', '#', '@', '%', '&', '$', '~'];

/// Renders `series` as an ASCII line chart of the given plot-area size.
///
/// The x axis spans the union of all window counts, the y axis spans
/// `[0, max]` (the paper's figures are zero-based), and each series gets
/// a glyph from a legend printed below.
///
/// ```rust
/// use regwin_core::report::Series;
/// use regwin_core::chart::ascii_chart;
///
/// let mut s = Series::new("SP");
/// s.push(4, 100.0);
/// s.push(8, 50.0);
/// let plot = ascii_chart("demo", "cycles", &[s], 40, 10);
/// assert!(plot.contains("SP"));
/// assert!(plot.contains('o'));
/// ```
pub fn ascii_chart(
    title: &str,
    value_name: &str,
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let xs: Vec<usize> = {
        let mut v: Vec<usize> =
            series.iter().flat_map(|s| s.points.iter().map(|(x, _)| *x)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    if xs.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let x_min = *xs.first().expect("nonempty") as f64;
    let x_max = *xs.last().expect("nonempty") as f64;
    let y_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(_, y)| *y))
        .fold(f64::MIN, f64::max)
        .max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let col = if x_max > x_min {
                ((x as f64 - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize
            } else {
                0
            };
            let row_f = (y / y_max) * (height - 1) as f64;
            let row = (height - 1) - row_f.round().min((height - 1) as f64) as usize;
            let cell = &mut grid[row][col.min(width - 1)];
            // Overlapping points show a generic mark.
            *cell = if *cell == ' ' || *cell == glyph { glyph } else { '?' };
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let y_label = format!("{y_max:.3e}");
    out.push_str(&format!("{y_label:>12} ┤"));
    for (r, row) in grid.iter().enumerate() {
        if r > 0 {
            out.push_str(&format!("{:>12} │", ""));
        }
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>12} └{}\n", 0, "─".repeat(width)));
    out.push_str(&format!(
        "{:>14}{:<w$}{}\n",
        x_min as usize,
        "",
        x_max as usize,
        w = width.saturating_sub(8)
    ));
    out.push_str(&format!("{:>14}windows — {value_name}\n", ""));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("    {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, pts: &[(usize, f64)]) -> Series {
        let mut s = Series::new(label);
        for &(x, y) in pts {
            s.push(x, y);
        }
        s
    }

    #[test]
    fn chart_contains_all_legends() {
        let a = series("NS", &[(4, 10.0), (32, 10.0)]);
        let b = series("SP", &[(4, 20.0), (32, 5.0)]);
        let plot = ascii_chart("t", "cycles", &[a, b], 40, 10);
        assert!(plot.contains("NS"));
        assert!(plot.contains("SP"));
        assert!(plot.contains('o'));
        assert!(plot.contains('+'));
    }

    #[test]
    fn descending_series_plots_high_then_low() {
        let s = series("SP", &[(4, 100.0), (32, 0.0)]);
        let plot = ascii_chart("t", "v", &[s], 30, 8);
        let rows: Vec<&str> = plot.lines().collect();
        // The first grid row (top) must contain the glyph (y=100 = max).
        assert!(rows[1].contains('o'), "{plot}");
    }

    #[test]
    fn empty_series_is_handled() {
        let plot = ascii_chart("t", "v", &[], 30, 8);
        assert!(plot.contains("no data"));
    }

    #[test]
    fn single_x_value_does_not_panic() {
        let s = series("one", &[(8, 5.0)]);
        let plot = ascii_chart("t", "v", &[s], 30, 8);
        assert!(plot.contains('o'));
    }

    #[test]
    fn overlapping_points_are_marked() {
        let a = series("A", &[(4, 50.0)]);
        let b = series("B", &[(4, 50.0)]);
        let plot = ascii_chart("t", "v", &[a, b], 30, 8);
        assert!(plot.contains('?'));
    }
}
