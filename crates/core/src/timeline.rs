//! Window-occupancy timelines: replay a trace and render who owns each
//! physical window slot over time — the register file's story as a text
//! strip chart, one row per slot, one column per sample.
//!
//! This is the picture behind the paper's Figures 5–9: under the sharing
//! schemes, each thread's windows sit still across context switches
//! (long horizontal runs of one thread's digit), while under NS every
//! switch repaints the file.

use crate::report::TextTable;
use regwin_machine::{MachineConfig, SlotUse, WindowIndex};
use regwin_rt::{RtError, Trace, TraceEvent};
use regwin_traps::{Cpu, RestoreInstr, Scheme};

/// One sampled snapshot of the window file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Event index at which the sample was taken.
    pub at_event: usize,
    /// Per-slot usage, indexed by window.
    pub slots: Vec<SlotUse>,
    /// The CWP at sample time.
    pub cwp: WindowIndex,
}

/// A rendered occupancy timeline plus the raw snapshots.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Scheme and window count description.
    pub title: String,
    /// The snapshots, oldest first.
    pub snapshots: Vec<Snapshot>,
}

impl Timeline {
    /// Renders the timeline as one text row per window slot: digits are
    /// live frames (thread index mod 10), `·` free, lowercase letters
    /// dead frames, `R` the global reservation, `p` a PRW; `*` overlays
    /// the CWP slot.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let nslots = self.snapshots.first().map(|s| s.slots.len()).unwrap_or(0);
        for slot in 0..nslots {
            out.push_str(&format!("W{slot:<2} "));
            for snap in &self.snapshots {
                let c = if snap.cwp.index() == slot {
                    '*'
                } else {
                    match snap.slots[slot] {
                        SlotUse::Free => '·',
                        SlotUse::Live(t) => {
                            char::from_digit((t.index() % 10) as u32, 10).unwrap_or('?')
                        }
                        SlotUse::Dead(t) => (b'a' + (t.index() % 26) as u8) as char,
                        SlotUse::Reserved => 'R',
                        SlotUse::Prw(_) => 'p',
                    }
                };
                out.push(c);
            }
            out.push('\n');
        }
        out.push_str(
            "    (digits: live frames by thread, letters: dead, p: PRW, R: reserved, *: CWP)\n",
        );
        out
    }

    /// The fraction of samples in which a given thread had at least one
    /// live window resident — a residency measure per thread.
    pub fn residency(&self, thread: usize) -> f64 {
        if self.snapshots.is_empty() {
            return 0.0;
        }
        let hits = self
            .snapshots
            .iter()
            .filter(|s| {
                s.slots.iter().any(|u| matches!(u, SlotUse::Live(t) if t.index() == thread))
            })
            .count();
        hits as f64 / self.snapshots.len() as f64
    }

    /// Renders per-thread residency as a table.
    pub fn residency_table(&self, names: &[String]) -> TextTable {
        let mut table = TextTable::new("Window residency per thread", &["thread", "residency"]);
        for (i, name) in names.iter().enumerate() {
            table.row(vec![name.clone(), format!("{:.0}%", 100.0 * self.residency(i))]);
        }
        table
    }
}

/// Replays `trace` under the given scheme, sampling the window file
/// `samples` times at even event intervals.
///
/// # Errors
///
/// Propagates replay errors.
pub fn sample_timeline(
    trace: &Trace,
    nwindows: usize,
    scheme: Box<dyn Scheme>,
    samples: usize,
) -> Result<Timeline, RtError> {
    let title = format!("{} on {} windows, {} samples", scheme.kind(), nwindows, samples.max(1));
    let mut cpu = Cpu::with_config(MachineConfig::new(nwindows), scheme)?;
    let threads: Vec<_> = (0..trace.thread_names().len()).map(|_| cpu.add_thread()).collect();
    let stride = (trace.len() / samples.max(1)).max(1);
    let mut snapshots = Vec::new();
    for (i, event) in trace.events().iter().enumerate() {
        match *event {
            TraceEvent::Save => cpu.save()?,
            TraceEvent::Restore => cpu.restore_with(&RestoreInstr::trivial())?,
            TraceEvent::Compute(c) => cpu.compute(c),
            TraceEvent::SwitchTo(t) => cpu.switch_to(threads[t.index()])?,
            TraceEvent::Terminate => {
                cpu.terminate_current()?;
            }
        }
        if i % stride == 0 {
            let m = cpu.machine();
            snapshots.push(Snapshot {
                at_event: i,
                slots: (0..nwindows).map(|w| m.slot_use(WindowIndex::new(w))).collect(),
                cwp: m.cwp(),
            });
        }
    }
    Ok(Timeline { title, snapshots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regwin_spell::{CorpusSpec, SpellConfig, SpellPipeline};
    use regwin_traps::{build_scheme, SchemeKind};

    fn trace() -> Trace {
        let pipeline = SpellPipeline::new(SpellConfig::new(CorpusSpec::small(), 4, 4));
        pipeline.run_traced(8, SchemeKind::Sp).unwrap().1
    }

    #[test]
    fn timeline_samples_and_renders() {
        let t = trace();
        let tl = sample_timeline(&t, 8, build_scheme(SchemeKind::Sp), 60).unwrap();
        assert!(tl.snapshots.len() >= 50);
        let rendered = tl.render();
        assert!(rendered.lines().count() >= 9, "8 slot rows + header");
        assert!(rendered.contains('*'), "CWP marker present");
    }

    #[test]
    fn sharing_keeps_threads_resident_longer_than_ns() {
        let t = trace();
        let sp = sample_timeline(&t, 16, build_scheme(SchemeKind::Sp), 200).unwrap();
        let ns = sample_timeline(&t, 16, build_scheme(SchemeKind::Ns), 200).unwrap();
        // Mean residency across the pipeline threads: under NS only the
        // running thread is ever resident, under SP most threads stay.
        let mean = |tl: &Timeline| -> f64 { (0..7).map(|i| tl.residency(i)).sum::<f64>() / 7.0 };
        assert!(
            mean(&sp) > mean(&ns) + 0.3,
            "SP residency {:.2} must far exceed NS {:.2}",
            mean(&sp),
            mean(&ns)
        );
    }

    #[test]
    fn residency_table_lists_all_threads() {
        let t = trace();
        let tl = sample_timeline(&t, 8, build_scheme(SchemeKind::Snp), 40).unwrap();
        let names: Vec<String> = t.thread_names().to_vec();
        let table = tl.residency_table(&names);
        assert_eq!(table.len(), 7);
    }
}
