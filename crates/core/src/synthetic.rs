//! Synthetic microworkload with directly controllable §5 behaviour.
//!
//! The spell checker's window activity emerges from its input; this
//! module provides the complement — a token-ring pipeline whose **window
//! activity per thread** (call depth), **concurrency** (thread count)
//! and **granularity** (buffer size) are set directly, for controlled
//! sweeps of the paper's behavioural model (total activity ≈ activity
//! per thread × concurrency, and the sharing schemes saturate once the
//! file covers it).

use regwin_machine::MachineConfig;
use regwin_rt::{Ctx, RtError, RunReport, SchedulingPolicy, Simulation, StreamId, Trace};
use regwin_traps::{build_scheme, SchemeKind};

/// Parameters of the synthetic ring workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Threads in the ring (the concurrency knob).
    pub threads: usize,
    /// Items the generator injects (workload length).
    pub items: usize,
    /// Procedure-call depth of each item's processing (the
    /// window-activity-per-thread knob).
    pub call_depth: usize,
    /// Ring-stream capacity in bytes (the granularity knob).
    pub buffer: usize,
    /// Compute cycles charged in each call frame.
    pub compute_per_frame: u64,
}

impl SyntheticSpec {
    /// A small default: 4 threads, 200 items, depth 3, 1-byte buffers.
    pub fn small() -> Self {
        SyntheticSpec { threads: 4, items: 200, call_depth: 3, buffer: 1, compute_per_frame: 2 }
    }

    /// The exact SP window demand of this spec: each stage thread holds
    /// its base frame, a `call_depth + 1`-frame pump chain and one
    /// private reserved window; the sink holds base + read frame + PRW.
    /// With this many physical windows, every thread stays fully
    /// resident and the SP scheme saturates (verified by
    /// `sharing_saturation_tracks_nominal_total_activity`).
    pub fn nominal_total_activity(&self) -> usize {
        self.threads * (self.call_depth + 3) + 3
    }
}

/// Processes one item through a call chain of the given depth, with the
/// stream I/O at the *bottom* frame — where real code's `getc`/`putc`
/// sit, and where blocking must happen for resumed threads to re-enter
/// their dead windows trap-free (see `regwin-spell`'s T1).
fn pump_item(
    ctx: &mut Ctx,
    depth: usize,
    compute: u64,
    input: Option<StreamId>,
    output: StreamId,
    inject: Option<u8>,
) -> Result<bool, RtError> {
    ctx.call(|ctx| {
        ctx.compute(compute);
        if depth > 0 {
            return pump_item(ctx, depth - 1, compute, input, output, inject);
        }
        let byte = match (input, inject) {
            (Some(input), _) => match ctx.read_byte(input)? {
                Some(b) => b,
                None => return Ok(false),
            },
            (None, Some(b)) => b,
            (None, None) => return Ok(false),
        };
        ctx.write_byte(output, byte)?;
        Ok(true)
    })
}

fn stage_body(
    input: Option<StreamId>,
    output: StreamId,
    spec: SyntheticSpec,
) -> impl FnOnce(&mut Ctx) -> Result<(), RtError> + Send + 'static {
    move |ctx| {
        match input {
            None => {
                // The generator: inject items through its call chain.
                for i in 0..spec.items {
                    pump_item(
                        ctx,
                        spec.call_depth,
                        spec.compute_per_frame,
                        None,
                        output,
                        Some((i % 251) as u8),
                    )?;
                }
                ctx.close_writer(output)
            }
            Some(input) => {
                while pump_item(
                    ctx,
                    spec.call_depth,
                    spec.compute_per_frame,
                    Some(input),
                    output,
                    None,
                )? {}
                ctx.close_writer(output)
            }
        }
    }
}

fn build(
    spec: SyntheticSpec,
    nwindows: usize,
    scheme: SchemeKind,
    policy: SchedulingPolicy,
    traced: bool,
) -> Result<Simulation, RtError> {
    assert!(spec.threads >= 2, "a ring needs at least two threads");
    let mut sim = Simulation::with_config(MachineConfig::new(nwindows), build_scheme(scheme))?
        .with_policy(policy);
    if traced {
        sim = sim.with_trace_recording();
    }
    let streams: Vec<StreamId> =
        (0..spec.threads).map(|i| sim.add_stream(format!("ring{i}"), spec.buffer, 1)).collect();
    for i in 0..spec.threads {
        let input = if i == 0 { None } else { Some(streams[i - 1]) };
        let output = streams[i];
        sim.spawn(format!("stage{i}"), stage_body(input, output, spec));
    }
    // A sink drains the last ring stream.
    let last = streams[spec.threads - 1];
    sim.spawn("sink", move |ctx| {
        while ctx.call(|ctx| ctx.read_byte(last))?.is_some() {
            ctx.compute(1);
        }
        Ok(())
    });
    Ok(sim)
}

/// Runs the synthetic workload.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn run(
    spec: SyntheticSpec,
    nwindows: usize,
    scheme: SchemeKind,
    policy: SchedulingPolicy,
) -> Result<RunReport, RtError> {
    build(spec, nwindows, scheme, policy, false)?.run()
}

/// Runs once with trace recording (for activity analysis and replays).
///
/// # Errors
///
/// Propagates runtime errors.
pub fn run_traced(
    spec: SyntheticSpec,
    nwindows: usize,
    scheme: SchemeKind,
) -> Result<(RunReport, Trace), RtError> {
    let (report, trace) =
        build(spec, nwindows, scheme, SchedulingPolicy::Fifo, true)?.run_with_trace()?;
    Ok((report, trace.expect("recording enabled")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity;

    #[test]
    fn deeper_calls_mean_more_activity_per_thread() {
        let shallow = SyntheticSpec { call_depth: 1, ..SyntheticSpec::small() };
        let deep = SyntheticSpec { call_depth: 6, ..SyntheticSpec::small() };
        let (_, t1) = run_traced(shallow, 16, SchemeKind::Sp).unwrap();
        let (_, t2) = run_traced(deep, 16, SchemeKind::Sp).unwrap();
        let a1 = activity::analyze(&t1, 2_000).avg_activity_per_thread;
        let a2 = activity::analyze(&t2, 2_000).avg_activity_per_thread;
        assert!(a2 > a1 + 2.0, "shallow {a1} vs deep {a2}");
    }

    #[test]
    fn more_threads_mean_more_concurrency_and_total_activity() {
        let narrow = SyntheticSpec { threads: 2, ..SyntheticSpec::small() };
        let wide = SyntheticSpec { threads: 6, ..SyntheticSpec::small() };
        let (_, t1) = run_traced(narrow, 32, SchemeKind::Sp).unwrap();
        let (_, t2) = run_traced(wide, 32, SchemeKind::Sp).unwrap();
        let r1 = activity::analyze(&t1, 2_000);
        let r2 = activity::analyze(&t2, 2_000);
        assert!(r2.avg_concurrency > r1.avg_concurrency);
        assert!(r2.avg_total_activity > r1.avg_total_activity);
    }

    #[test]
    fn sharing_saturation_tracks_nominal_total_activity() {
        // The paper's central behavioural claim: the sharing schemes stop
        // improving once the file covers the total window activity.
        let spec = SyntheticSpec { threads: 3, call_depth: 2, ..SyntheticSpec::small() };
        let nominal = spec.nominal_total_activity(); // 18 for (3 threads, depth 2)
        let at =
            |w: usize| run(spec, w, SchemeKind::Sp, SchedulingPolicy::Fifo).unwrap().total_cycles();
        let scarce = at(4);
        let covered = at(nominal);
        let plenty = at(40);
        assert!(covered < scarce, "covering the activity must help");
        let covered_f = covered as f64;
        assert!(
            (plenty as f64 - covered_f).abs() / covered_f < 0.10,
            "beyond coverage, more windows change little: {covered} vs {plenty}"
        );
    }

    #[test]
    fn scheme_ordering_holds_on_the_synthetic_workload_too() {
        let spec = SyntheticSpec::small();
        let sp = run(spec, 32, SchemeKind::Sp, SchedulingPolicy::Fifo).unwrap();
        let ns = run(spec, 32, SchemeKind::Ns, SchedulingPolicy::Fifo).unwrap();
        assert!(sp.total_cycles() < ns.total_cycles());
    }

    #[test]
    fn results_are_deterministic() {
        let spec = SyntheticSpec::small();
        let a = run(spec, 8, SchemeKind::Snp, SchedulingPolicy::Fifo).unwrap();
        let b = run(spec, 8, SchemeKind::Snp, SchedulingPolicy::Fifo).unwrap();
        assert_eq!(a.total_cycles(), b.total_cycles());
    }
}
