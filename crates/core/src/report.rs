//! Plain-text table and series formatting for the reproduction reports.

use std::fmt;

/// A simple column-aligned text table with a title.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        writeln!(f, "{}", "=".repeat(self.title.len().max(total)))?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{h:>width$}", width = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A named data series over the window-count axis — one line of a paper
/// figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"SP fine"`.
    pub label: String,
    /// `(nwindows, value)` points in sweep order.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// A series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Series { label: label.into(), points: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, nwindows: usize, value: f64) {
        self.points.push((nwindows, value));
    }

    /// The value at the given window count, if present.
    pub fn at(&self, nwindows: usize) -> Option<f64> {
        self.points.iter().find(|(n, _)| *n == nwindows).map(|(_, v)| *v)
    }

    /// The last (largest-window) value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }
}

/// Renders a set of series as a window-count × series text table.
pub fn series_table(title: &str, value_name: &str, series: &[Series]) -> TextTable {
    let mut headers: Vec<String> = vec!["windows".to_string()];
    headers.extend(series.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(format!("{title} [{value_name}]"), &header_refs);
    let axis: Vec<usize> =
        series.first().map(|s| s.points.iter().map(|(n, _)| *n).collect()).unwrap_or_default();
    for n in axis {
        let mut row = vec![n.to_string()];
        for s in series {
            row.push(s.at(n).map(|v| format!("{v:.4}")).unwrap_or_else(|| "-".into()));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = TextTable::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new("t", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("SP");
        s.push(4, 1.0);
        s.push(8, 0.5);
        assert_eq!(s.at(8), Some(0.5));
        assert_eq!(s.at(5), None);
        assert_eq!(s.last(), Some(0.5));
    }

    #[test]
    fn series_table_uses_first_series_axis() {
        let mut a = Series::new("A");
        a.push(4, 1.0);
        a.push(8, 2.0);
        let mut b = Series::new("B");
        b.push(4, 3.0);
        b.push(8, 4.0);
        let t = series_table("fig", "cycles", &[a, b]);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.starts_with("windows,A,B"));
    }
}
