//! # regwin-traps
//!
//! Window trap handlers and window-management schemes for the
//! `regwin-machine` substrate — the *policy* layer reproducing the
//! algorithms of *"Multiple Threads in Cyclic Register Windows"*
//! (Hidaka, Koike, Tanaka — ISCA 1993).
//!
//! Three schemes are provided, exactly the three the paper implements and
//! evaluates (§4.5):
//!
//! * [`NsScheme`] — **Non-sharing**: the conventional algorithm. A context
//!   switch flushes every active window of the suspended thread; the
//!   incoming thread gets its stack-top window restored. Underflow is
//!   handled conventionally (restore below, move the reservation).
//! * [`SnpScheme`] — **Sharing without private reserved windows**: windows
//!   of suspended threads stay in the register file; one global reserved
//!   window is repositioned above the incoming thread's stack-top on each
//!   switch; the stack-top `out` registers are saved to and restored from
//!   the TCB. Underflow uses the paper's proposed **in-place restore**.
//! * [`SpScheme`] — **Sharing with a private reserved window (PRW) per
//!   thread**: resuming a thread whose windows (and PRW) are still
//!   resident moves *no* registers at all. Underflow is in-place.
//!
//! The [`Cpu`] type composes a [`regwin_machine::Machine`] with a
//! [`Scheme`], resolving traps transparently so a runtime can simply call
//! [`Cpu::save`], [`Cpu::restore`] and [`Cpu::switch_to`].
//!
//! ```rust
//! use regwin_traps::{Cpu, SpScheme};
//!
//! # fn main() -> Result<(), regwin_traps::SchemeError> {
//! let mut cpu = Cpu::new(8, Box::new(SpScheme::new()))?;
//! let a = cpu.add_thread();
//! let b = cpu.add_thread();
//! cpu.switch_to(a)?;
//! cpu.save()?;            // procedure call by thread a
//! cpu.switch_to(b)?;      // b's windows are allocated beside a's
//! cpu.switch_to(a)?;      // resuming a moves no windows at all
//! cpu.restore()?;         // return from the call
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod alloc;
mod conventional;
mod cpu;
mod error;
mod inplace;
mod restore_emul;
mod scheme;
mod schemes;

pub use alloc::{displace, AllocPolicy, Allocator, DisplaceOutcome};
pub use conventional::handle_conventional_underflow;
pub use cpu::Cpu;
pub use error::SchemeError;
pub use inplace::{handle_inplace_underflow, CopyMode};
pub use restore_emul::{Operand, Reg, RestoreInstr};
pub use scheme::{build_scheme, Scheme, UnderflowResolution};
pub use schemes::{NsScheme, SnpScheme, SpScheme};

pub use regwin_machine::SchemeKind;
