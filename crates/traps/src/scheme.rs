//! The window-management scheme interface.

use crate::error::SchemeError;
use crate::restore_emul::RestoreInstr;
use crate::schemes::{NsScheme, SnpScheme, SpScheme};
use regwin_machine::{Machine, SchemeKind, ThreadId, WindowTrap};
use std::fmt::Debug;

/// How an underflow trap was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnderflowResolution {
    /// The conventional algorithm restored the caller's window *below*
    /// the current one; the trapped `restore` must now be re-executed
    /// (via [`regwin_machine::Machine::complete_restore`]).
    CompleteRestore,
    /// The proposed algorithm restored the caller's window *in place* and
    /// emulated the `restore`; nothing further to do.
    AlreadyComplete,
}

/// A window-management scheme: the policy that resolves window traps and
/// performs context switches on a [`Machine`].
///
/// Implementations correspond to the paper's evaluated schemes
/// ([`NsScheme`], [`SnpScheme`], [`SpScheme`]); the trait is public so
/// that new policies (e.g. different allocation strategies) can be
/// plugged into the same runtime.
pub trait Scheme: Debug + Send {
    /// Which cost-table rows this scheme charges (paper Table 2).
    fn kind(&self) -> SchemeKind;

    /// Minimum number of physical windows this scheme can operate with.
    fn min_windows(&self) -> usize;

    /// One-time initialisation (e.g. removing the global reserved window
    /// for SP). Called by [`crate::Cpu::new`] before any thread runs.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    fn init(&mut self, m: &mut Machine) -> Result<(), SchemeError>;

    /// Resolves an overflow trap, making the `save` target valid. The
    /// caller re-executes the `save` afterwards.
    ///
    /// # Errors
    ///
    /// Fails on broken invariants (trap at an impossible window).
    fn on_overflow(&mut self, m: &mut Machine, trap: WindowTrap) -> Result<(), SchemeError>;

    /// Resolves an underflow trap. `instr` is the decoded trapped
    /// `restore`, for schemes that emulate it rather than re-execute it.
    ///
    /// # Errors
    ///
    /// Fails on a return past the outermost frame or broken invariants.
    fn on_underflow(
        &mut self,
        m: &mut Machine,
        trap: WindowTrap,
        instr: &RestoreInstr,
    ) -> Result<UnderflowResolution, SchemeError>;

    /// Performs a context switch to `to`, suspending `from` (if any)
    /// according to the scheme's policy, transferring whatever windows the
    /// policy requires, and charging the calibrated switch cost. On
    /// return, `to` is the machine's current thread with a valid stack-top
    /// window.
    ///
    /// `from` is `None` when there is nothing to suspend (first dispatch,
    /// or the previous thread terminated and was already released).
    ///
    /// # Errors
    ///
    /// Fails if no window can be allocated for `to`.
    fn context_switch(
        &mut self,
        m: &mut Machine,
        from: Option<ThreadId>,
        to: ThreadId,
    ) -> Result<(), SchemeError>;
}

/// Builds the scheme implementing the paper's given evaluated kind, with
/// default options (full in-copy, in-situ suspension, the paper's simple
/// allocation policy).
pub fn build_scheme(kind: SchemeKind) -> Box<dyn Scheme> {
    match kind {
        SchemeKind::Ns => Box::new(NsScheme::new()),
        SchemeKind::Snp => Box::new(SnpScheme::new()),
        SchemeKind::Sp => Box::new(SpScheme::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_scheme_matches_kind() {
        for kind in SchemeKind::ALL {
            assert_eq!(build_scheme(kind).kind(), kind);
        }
    }
}
