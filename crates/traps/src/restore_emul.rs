//! Emulation of the trapped `restore` instruction's add semantics.
//!
//! On SPARC, `restore rs1, reg_or_imm, rd` is also an add: it computes
//! `rs1 + reg_or_imm` with the source operands read in the **old**
//! (callee's) window and writes the result to `rd` in the **new**
//! (caller's) window. Compilers exploit this in a peephole optimisation to
//! fold the instruction that sets the return value into the `restore`
//! (paper §4.3).
//!
//! Under the proposed in-place underflow algorithm the trapped `restore`
//! is never re-executed, so the handler must interpret and emulate it —
//! "this can be done with a small overhead, because the instruction format
//! is simple and the destination register is either the particular
//! return-value register if the adding function is used, or the zero
//! register if it is not" (§4.3). This module is that interpreter.

use crate::error::SchemeError;
use regwin_machine::Machine;
use std::fmt;

/// A window register name as encoded in a `restore` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg {
    /// Global register `%g0`–`%g7` (`%g0` reads zero, ignores writes).
    G(u8),
    /// Out register `%o0`–`%o7`.
    O(u8),
    /// Local register `%l0`–`%l7`.
    L(u8),
    /// In register `%i0`–`%i7`.
    I(u8),
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::G(i) => write!(f, "%g{i}"),
            Reg::O(i) => write!(f, "%o{i}"),
            Reg::L(i) => write!(f, "%l{i}"),
            Reg::I(i) => write!(f, "%i{i}"),
        }
    }
}

/// The second operand of a `restore`: a register or a 13-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Sign-extended immediate (`simm13` on SPARC).
    Imm(i16),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// A decoded `restore rs1, reg_or_imm, rd` instruction.
///
/// ```rust
/// use regwin_traps::{Operand, Reg, RestoreInstr};
///
/// // The peephole-optimised `restore %o2, %o3, %o0`, folding
/// // `add %o2, %o3, %o0` into the return:
/// let r = RestoreInstr::new(Reg::O(2), Operand::Reg(Reg::O(3)), Reg::O(0));
/// assert!(!r.is_trivial());
/// assert!(RestoreInstr::trivial().is_trivial());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RestoreInstr {
    /// First source register, read in the callee's window.
    pub rs1: Reg,
    /// Second operand, read in the callee's window.
    pub op2: Operand,
    /// Destination register, written in the caller's window.
    pub rd: Reg,
}

impl RestoreInstr {
    /// A decoded `restore` with the given operands.
    pub fn new(rs1: Reg, op2: Operand, rd: Reg) -> Self {
        RestoreInstr { rs1, op2, rd }
    }

    /// The plain `restore %g0, %g0, %g0` emitted when the add function is
    /// unused.
    pub fn trivial() -> Self {
        RestoreInstr::new(Reg::G(0), Operand::Reg(Reg::G(0)), Reg::G(0))
    }

    /// Whether this is the trivial no-add form.
    pub fn is_trivial(&self) -> bool {
        *self == RestoreInstr::trivial()
    }

    /// Reads the source operands in the **current** (callee's) window.
    /// Must be called before the in-place restore overwrites the frame.
    ///
    /// # Errors
    ///
    /// Fails if no thread is current.
    pub fn read_sources(&self, m: &Machine) -> Result<u64, SchemeError> {
        let a = read_reg(m, self.rs1)?;
        let b = match self.op2 {
            Operand::Reg(r) => read_reg(m, r)?,
            Operand::Imm(v) => v as i64 as u64,
        };
        Ok(a.wrapping_add(b))
    }

    /// Writes the precomputed result to `rd` in the **current** (now the
    /// caller's) window. Call after the in-place restore completed.
    ///
    /// # Errors
    ///
    /// Fails if no thread is current.
    pub fn write_destination(&self, m: &mut Machine, value: u64) -> Result<(), SchemeError> {
        write_reg(m, self.rd, value)
    }
}

impl fmt::Display for RestoreInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "restore {}, {}, {}", self.rs1, self.op2, self.rd)
    }
}

fn read_reg(m: &Machine, r: Reg) -> Result<u64, SchemeError> {
    Ok(match r {
        Reg::G(0) => 0,
        Reg::G(i) => read_global(m, i),
        Reg::O(i) => m.read_out(i as usize)?,
        Reg::L(i) => m.read_local(i as usize)?,
        Reg::I(i) => m.read_in(i as usize)?,
    })
}

fn write_reg(m: &mut Machine, r: Reg, value: u64) -> Result<(), SchemeError> {
    match r {
        Reg::G(0) => {}
        Reg::G(_i) => { /* globals are modelled per-machine; see below */ }
        Reg::O(i) => m.write_out(i as usize, value)?,
        Reg::L(i) => m.write_local(i as usize, value)?,
        Reg::I(i) => m.write_in(i as usize, value)?,
    }
    Ok(())
}

// The machine's global file is not exposed per-register through `Machine`
// (window management never touches globals), so global reads other than
// `%g0` evaluate to zero here. The compilers the paper describes only fold
// `add`/`sub`/`mov` producing the *return value*, whose operands live in
// window registers, so this does not restrict the modelled behaviour.
fn read_global(_m: &Machine, _i: u8) -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use regwin_machine::{Machine, WindowIndex};

    fn machine_with_current() -> Machine {
        let mut m = Machine::new(8).unwrap();
        let t = m.add_thread();
        m.start_initial_frame(t, WindowIndex::new(1)).unwrap();
        m.set_current(Some(t)).unwrap();
        m
    }

    #[test]
    fn trivial_restore_computes_zero() {
        let m = machine_with_current();
        let r = RestoreInstr::trivial();
        assert_eq!(r.read_sources(&m).unwrap(), 0);
    }

    #[test]
    fn add_form_sums_register_and_immediate() {
        let mut m = machine_with_current();
        m.write_local(2, 40).unwrap();
        let r = RestoreInstr::new(Reg::L(2), Operand::Imm(2), Reg::O(0));
        assert_eq!(r.read_sources(&m).unwrap(), 42);
    }

    #[test]
    fn negative_immediate_is_sign_extended() {
        let mut m = machine_with_current();
        m.write_in(0, 10).unwrap();
        let r = RestoreInstr::new(Reg::I(0), Operand::Imm(-3), Reg::O(0));
        assert_eq!(r.read_sources(&m).unwrap(), 7);
    }

    #[test]
    fn register_register_form() {
        let mut m = machine_with_current();
        m.write_out(2, 5).unwrap();
        m.write_out(3, 6).unwrap();
        let r = RestoreInstr::new(Reg::O(2), Operand::Reg(Reg::O(3)), Reg::O(0));
        assert_eq!(r.read_sources(&m).unwrap(), 11);
    }

    #[test]
    fn write_destination_lands_in_named_register() {
        let mut m = machine_with_current();
        let r = RestoreInstr::new(Reg::G(0), Operand::Imm(9), Reg::L(4));
        let v = r.read_sources(&m).unwrap();
        r.write_destination(&mut m, v).unwrap();
        assert_eq!(m.read_local(4).unwrap(), 9);
    }

    #[test]
    fn g0_destination_discards() {
        let mut m = machine_with_current();
        let r = RestoreInstr::trivial();
        r.write_destination(&mut m, 123).unwrap(); // must not panic
    }

    #[test]
    fn display_formats_assembly() {
        let r = RestoreInstr::new(Reg::O(2), Operand::Imm(4), Reg::O(0));
        assert_eq!(r.to_string(), "restore %o2, 4, %o0");
    }
}
