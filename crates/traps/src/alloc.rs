//! Window allocation for incoming threads without resident windows.
//!
//! The paper evaluates only the *simple* policy — allocate directly above
//! the suspended thread's windows (§4.2) — and notes that it can cause
//! pathological spill/restore ping-pong between two threads (visible in
//! the SNP scheme's "strange behavior at fine granularity", §6.4). The
//! alternatives it sketches — "search for a free window, or select the
//! least-recently-used stack-bottom window" — are implemented here as
//! well, for the ablation benches.

use crate::error::SchemeError;
use regwin_machine::{Machine, SlotUse, ThreadId, TransferReason, WindowIndex};

/// Where to place the stack-top window of an incoming thread that has no
/// resident windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocPolicy {
    /// The paper's evaluated policy: directly above the suspended
    /// thread's windows (its reservation under SNP, its PRW under SP).
    #[default]
    AboveSuspended,
    /// Search the file for a free window first; fall back to
    /// [`AllocPolicy::AboveSuspended`] when none exists (paper §4.2's
    /// "worth the extra cost to search for a free window").
    FirstFree,
    /// Prefer a free window; otherwise displace the stack-bottom window
    /// of the least-recently-scheduled thread (paper §4.2's LRU variant).
    LruBottom,
}

/// What displacing a slot's occupant required.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DisplaceOutcome {
    /// A live stack-bottom window was spilled to memory.
    pub spilled: bool,
    /// A private reserved window was stolen (its owner's stack-top `out`
    /// registers were saved to the owner's TCB).
    pub stole_prw: bool,
}

impl DisplaceOutcome {
    /// Windows saved to memory (0 or 1).
    pub fn saves(&self) -> u32 {
        u32::from(self.spilled)
    }
}

/// Makes `slot` discardable so a scheme can allocate it: spills a live
/// stack-bottom frame or steals a PRW; free, dead and reserved slots need
/// nothing.
///
/// # Errors
///
/// Fails if the slot holds a live window that is *not* its owner's
/// stack-bottom — displacing a mid-region window would break the owner's
/// contiguity, and all scheme call sites are constructed (and proven in
/// the module tests) never to pick such a slot.
pub fn displace(m: &mut Machine, slot: WindowIndex) -> Result<DisplaceOutcome, SchemeError> {
    match m.slot_use(slot) {
        SlotUse::Free | SlotUse::Dead(_) | SlotUse::Reserved => Ok(DisplaceOutcome::default()),
        SlotUse::Live(owner) => {
            if m.thread(owner)?.bottom(m.nwindows()) != Some(slot) {
                return Err(SchemeError::AllocationFailed(
                    "would displace a live non-bottom window",
                ));
            }
            m.spill_bottom(owner, TransferReason::Switch)?;
            Ok(DisplaceOutcome { spilled: true, stole_prw: false })
        }
        SlotUse::Prw(owner) => {
            m.steal_prw(owner)?;
            Ok(DisplaceOutcome { spilled: false, stole_prw: true })
        }
    }
}

/// Allocation bookkeeping shared by the sharing schemes: applies the
/// configured [`AllocPolicy`] and tracks scheduling recency for the LRU
/// variant.
#[derive(Debug, Clone, Default)]
pub struct Allocator {
    policy: AllocPolicy,
    ticks: Vec<u64>,
    clock: u64,
}

impl Allocator {
    /// An allocator with the given policy.
    pub fn new(policy: AllocPolicy) -> Self {
        Allocator { policy, ticks: Vec::new(), clock: 0 }
    }

    /// The configured policy.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// Records that `t` was just scheduled (recency for the LRU policy).
    pub fn note_scheduled(&mut self, t: ThreadId) {
        if self.ticks.len() <= t.index() {
            self.ticks.resize(t.index() + 1, 0);
        }
        self.clock += 1;
        self.ticks[t.index()] = self.clock;
    }

    /// Picks the slot for the stack-top window of windowless thread `to`.
    ///
    /// `simple_candidate` is the slot the paper's simple policy would use,
    /// computed by the scheme: under SNP the old reserved slot (directly
    /// above the suspended thread's windows), under SP the slot above the
    /// suspended thread's PRW. The returned slot is always safe to
    /// [`displace`].
    ///
    /// # Errors
    ///
    /// Fails if the file contains no allocatable slot at all (cannot
    /// happen on a consistent machine with ≥ 2 windows).
    pub fn pick_top_slot(
        &self,
        m: &Machine,
        simple_candidate: Option<WindowIndex>,
        to: ThreadId,
    ) -> Result<WindowIndex, SchemeError> {
        match self.policy {
            AllocPolicy::AboveSuspended => self.pick_simple(m, simple_candidate, to),
            AllocPolicy::FirstFree => match find_free(m) {
                Some(w) => Ok(w),
                None => self.pick_simple(m, simple_candidate, to),
            },
            AllocPolicy::LruBottom => match find_free(m) {
                Some(w) => Ok(w),
                None => match self.lru_bottom(m, to) {
                    Some(w) => Ok(w),
                    None => self.pick_simple(m, simple_candidate, to),
                },
            },
        }
    }

    fn pick_simple(
        &self,
        m: &Machine,
        simple_candidate: Option<WindowIndex>,
        to: ThreadId,
    ) -> Result<WindowIndex, SchemeError> {
        if let Some(a) = simple_candidate {
            return Ok(a);
        }
        // No suspended thread to anchor to (first dispatch or after a
        // termination): any free slot, then any displaceable one.
        if let Some(w) = find_free(m) {
            return Ok(w);
        }
        if let Some(w) = self.lru_bottom(m, to) {
            return Ok(w);
        }
        // Fall back to any PRW not owned by the incoming thread.
        for i in 0..m.nwindows() {
            let w = WindowIndex::new(i);
            if let SlotUse::Prw(owner) = m.slot_use(w) {
                if owner != to {
                    return Ok(w);
                }
            }
        }
        Err(SchemeError::AllocationFailed("no allocatable window in the file"))
    }

    /// The stack-bottom window of the least-recently-scheduled thread
    /// (other than `to`) that has resident windows.
    fn lru_bottom(&self, m: &Machine, to: ThreadId) -> Option<WindowIndex> {
        let mut best: Option<(u64, WindowIndex)> = None;
        for idx in 0..m.thread_count() {
            let t = ThreadId::new(idx);
            if t == to {
                continue;
            }
            let ts = m.thread(t).ok()?;
            if let Some(bottom) = ts.bottom(m.nwindows()) {
                let tick = self.ticks.get(idx).copied().unwrap_or(0);
                if best.map(|(bt, _)| tick < bt).unwrap_or(true) {
                    best = Some((tick, bottom));
                }
            }
        }
        best.map(|(_, w)| w)
    }
}

fn find_free(m: &Machine) -> Option<WindowIndex> {
    (0..m.nwindows()).map(WindowIndex::new).find(|w| m.slot_use(*w) == SlotUse::Free)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regwin_machine::Machine;

    #[test]
    fn displace_free_slot_is_noop() {
        let mut m = Machine::new(8).unwrap();
        let out = displace(&mut m, WindowIndex::new(3)).unwrap();
        assert_eq!(out, DisplaceOutcome::default());
        assert_eq!(out.saves(), 0);
    }

    #[test]
    fn displace_live_bottom_spills_it() {
        let mut m = Machine::new(8).unwrap();
        let t = m.add_thread();
        m.start_initial_frame(t, WindowIndex::new(4)).unwrap();
        let out = displace(&mut m, WindowIndex::new(4)).unwrap();
        assert!(out.spilled);
        assert_eq!(out.saves(), 1);
        assert_eq!(m.thread(t).unwrap().resident(), 0);
        assert_eq!(m.backing_of(t).unwrap().len(), 1);
    }

    #[test]
    fn displace_refuses_live_non_bottom() {
        let mut m = Machine::new(8).unwrap();
        let t = m.add_thread();
        m.start_initial_frame(t, WindowIndex::new(4)).unwrap();
        m.set_current(Some(t)).unwrap();
        // Grow to two windows: top at W3, bottom at W4.
        m.grant_slot(t, WindowIndex::new(3)).unwrap();
        m.complete_save().unwrap();
        assert!(matches!(
            displace(&mut m, WindowIndex::new(3)),
            Err(SchemeError::AllocationFailed(_))
        ));
    }

    #[test]
    fn displace_prw_steals_it() {
        let mut m = Machine::new(8).unwrap();
        m.set_reserved(None).unwrap();
        let t = m.add_thread();
        m.start_initial_frame(t, WindowIndex::new(4)).unwrap();
        m.assign_prw(t, WindowIndex::new(3)).unwrap();
        let out = displace(&mut m, WindowIndex::new(3)).unwrap();
        assert!(out.stole_prw);
        assert_eq!(m.thread(t).unwrap().prw(), None);
    }

    #[test]
    fn above_suspended_uses_the_candidate_as_is() {
        let m = Machine::new(8).unwrap();
        let alloc = Allocator::new(AllocPolicy::AboveSuspended);
        let to = ThreadId::new(0);
        let slot = alloc.pick_top_slot(&m, Some(WindowIndex::new(5)), to).unwrap();
        assert_eq!(slot, WindowIndex::new(5));
    }

    #[test]
    fn first_free_prefers_free_slots() {
        let mut m = Machine::new(4).unwrap();
        let t = m.add_thread();
        m.start_initial_frame(t, WindowIndex::new(1)).unwrap();
        let alloc = Allocator::new(AllocPolicy::FirstFree);
        let slot = alloc.pick_top_slot(&m, Some(WindowIndex::new(1)), t).unwrap();
        // W0 is reserved, W1 live; W2 is the first free slot.
        assert_eq!(slot, WindowIndex::new(2));
    }

    #[test]
    fn lru_bottom_picks_least_recently_scheduled() {
        let mut m = Machine::new(4).unwrap();
        m.set_reserved(None).unwrap();
        let a = m.add_thread();
        let b = m.add_thread();
        let c = m.add_thread();
        m.start_initial_frame(a, WindowIndex::new(0)).unwrap();
        m.start_initial_frame(b, WindowIndex::new(1)).unwrap();
        // Fill the rest so no free slot exists.
        m.start_initial_frame(c, WindowIndex::new(2)).unwrap();
        let d = m.add_thread();
        m.start_initial_frame(d, WindowIndex::new(3)).unwrap();
        let mut alloc = Allocator::new(AllocPolicy::LruBottom);
        alloc.note_scheduled(a);
        alloc.note_scheduled(b);
        alloc.note_scheduled(c);
        alloc.note_scheduled(d);
        let incoming = m.add_thread();
        // `a` is the least recently scheduled: its bottom gets displaced.
        let slot = alloc.pick_top_slot(&m, None, incoming).unwrap();
        assert_eq!(slot, WindowIndex::new(0));
    }

    #[test]
    fn fallback_without_anchor_finds_a_slot() {
        let m = Machine::new(8).unwrap();
        let alloc = Allocator::new(AllocPolicy::AboveSuspended);
        let slot = alloc.pick_top_slot(&m, None, ThreadId::new(0)).unwrap();
        assert_eq!(m.slot_use(slot), SlotUse::Free);
    }
}

#[cfg(test)]
mod policy_getter_tests {
    use super::*;

    #[test]
    fn allocator_reports_its_policy() {
        for policy in [AllocPolicy::AboveSuspended, AllocPolicy::FirstFree, AllocPolicy::LruBottom]
        {
            assert_eq!(Allocator::new(policy).policy(), policy);
        }
    }
}
