//! The CPU: a machine plus a window-management scheme, with traps
//! resolved transparently.

use crate::error::SchemeError;
use crate::restore_emul::RestoreInstr;
use crate::scheme::{Scheme, UnderflowResolution};
use regwin_machine::{
    ExecOutcome, FaultSchedule, Machine, MachineConfig, MachineStats, SchemeKind, ThreadId,
};
use regwin_obs::{Probe, ProbeEvent, SpanKind};
use std::sync::Arc;

/// A simulated CPU: composes a [`Machine`] with a [`Scheme`] so that
/// callers see trap-free `save`/`restore`/`switch_to` operations, the way
/// application code sees a real SPARC whose kernel installed the paper's
/// trap handlers.
///
/// ```rust
/// use regwin_traps::{Cpu, SnpScheme};
///
/// # fn main() -> Result<(), regwin_traps::SchemeError> {
/// let mut cpu = Cpu::new(8, Box::new(SnpScheme::new()))?;
/// let t = cpu.add_thread();
/// cpu.switch_to(t)?;
/// cpu.save()?;
/// cpu.write_local(0, 42)?;
/// cpu.restore()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Cpu {
    machine: Machine,
    scheme: Box<dyn Scheme>,
}

impl Cpu {
    /// Creates a CPU with `nwindows` windows, the default machine
    /// configuration (S-20 cost model, flat `s20` timing backend) and
    /// the given scheme.
    ///
    /// # Errors
    ///
    /// Fails if the window count is out of range or below the scheme's
    /// minimum.
    pub fn new(nwindows: usize, scheme: Box<dyn Scheme>) -> Result<Self, SchemeError> {
        Self::with_config(MachineConfig::new(nwindows), scheme)
    }

    /// Creates a CPU from an explicit [`MachineConfig`] (cost model and
    /// timing backend).
    ///
    /// # Errors
    ///
    /// Fails if the window count is out of range or below the scheme's
    /// minimum.
    pub fn with_config(
        config: MachineConfig,
        mut scheme: Box<dyn Scheme>,
    ) -> Result<Self, SchemeError> {
        if config.nwindows < scheme.min_windows() {
            return Err(SchemeError::TooFewWindows {
                have: config.nwindows,
                need: scheme.min_windows(),
            });
        }
        let mut machine = Machine::with_config(config)?;
        scheme.init(&mut machine)?;
        Ok(Cpu { machine, scheme })
    }

    /// Registers a new thread.
    pub fn add_thread(&mut self) -> ThreadId {
        self.machine.add_thread()
    }

    /// Which scheme this CPU runs.
    pub fn scheme_kind(&self) -> SchemeKind {
        self.machine_scheme_kind()
    }

    fn machine_scheme_kind(&self) -> SchemeKind {
        self.scheme.kind()
    }

    /// The underlying machine (read-only).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Installs (or with `None` removes) a deterministic fault schedule
    /// on the underlying machine; see
    /// [`regwin_machine::FaultSchedule`].
    pub fn set_fault_schedule(&mut self, faults: Option<FaultSchedule>) {
        self.machine.set_fault_schedule(faults);
    }

    /// Installs (or with `None` removes) an instrumentation probe on the
    /// underlying machine. Besides the machine's own counters, the CPU
    /// reports a `Trap` span around every overflow/underflow handler
    /// invocation and a `Switch` span around every context switch, each
    /// carrying the simulated cycles the scheme spent inside. Machine
    /// counter deltas are batched and reach the probe at span boundaries
    /// (or an explicit [`Cpu::flush_probe`]), not one dispatch per event.
    pub fn set_probe(&mut self, probe: Option<Arc<dyn Probe>>) {
        self.machine.set_probe(probe);
    }

    /// Delivers the machine's buffered counter deltas to the installed
    /// probe; see [`regwin_machine::Machine::flush_probe`]. Spans flush
    /// automatically on both sides — call this only at a boundary of
    /// your own, e.g. before reading a metric snapshot mid-run.
    pub fn flush_probe(&mut self) {
        self.machine.flush_probe();
    }

    /// Opens a span on the installed probe and returns the state needed
    /// to close it: the probe handle and the cycle total at entry.
    /// Buffered counter deltas are flushed first, so events charged
    /// before the span stay outside it.
    fn span_open(&mut self, kind: SpanKind, name: &'static str) -> Option<(Arc<dyn Probe>, u64)> {
        self.machine.flush_probe();
        let probe = self.machine.probe()?.clone();
        probe.record(&ProbeEvent::SpanStart { kind, name });
        Some((probe, self.machine.cycles().total()))
    }

    /// Closes a span opened with [`Cpu::span_open`], attributing the
    /// cycles charged in between. Counter deltas buffered inside the
    /// span are flushed before the `SpanEnd`, so they land inside it.
    fn span_close(
        &mut self,
        open: Option<(Arc<dyn Probe>, u64)>,
        kind: SpanKind,
        name: &'static str,
    ) {
        if let Some((probe, before)) = open {
            self.machine.flush_probe();
            let cycles = self.machine.cycles().total().saturating_sub(before);
            probe.record(&ProbeEvent::SpanEnd { kind, name, cycles });
        }
    }

    /// The currently running thread.
    pub fn current_thread(&self) -> Option<ThreadId> {
        self.machine.current_thread()
    }

    /// Enables window-state integrity auditing on the underlying machine
    /// (see [`regwin_machine::WindowAuditor`]). From now on the CPU
    /// audits the affected thread's live windows at every trap boundary
    /// (after overflow/underflow resolution) and on both sides of every
    /// context switch, repairing clean windows from the backing stack
    /// and surfacing dirty-window corruption as a typed error.
    pub fn enable_window_audit(&mut self) {
        self.machine.enable_auditor();
    }

    /// Total windows repaired by the auditor so far (0 when auditing is
    /// not enabled).
    pub fn window_repairs(&self) -> u64 {
        self.machine.auditor().map_or(0, |a| a.repairs())
    }

    /// Runs one on-demand audit pass over thread `t`; see
    /// [`regwin_machine::Machine::audit_thread`]. A no-op without
    /// auditing enabled.
    ///
    /// # Errors
    ///
    /// Propagates [`regwin_machine::MachineError::UnrecoverableCorruption`]
    /// for corrupted dirty windows.
    pub fn audit_thread(&mut self, t: ThreadId) -> Result<u64, SchemeError> {
        let span = self.audit_span_open();
        let repaired = self.machine.audit_thread(t)?;
        self.span_close(span, SpanKind::Audit, "audit");
        Ok(repaired)
    }

    /// Audits the current thread at a trap or switch boundary; a no-op
    /// when auditing is off or no thread is current.
    fn audit_current(&mut self) -> Result<(), SchemeError> {
        let span = self.audit_span_open();
        self.machine.audit_current()?;
        self.span_close(span, SpanKind::Audit, "audit");
        Ok(())
    }

    /// Opens an `Audit` span only when there is something to observe:
    /// auditing enabled and a probe installed.
    fn audit_span_open(&mut self) -> Option<(Arc<dyn Probe>, u64)> {
        if self.machine.auditor().is_some() {
            self.span_open(SpanKind::Audit, "audit")
        } else {
            None
        }
    }

    /// Releases every window and memory frame of thread `t` without it
    /// being current — the quarantine primitive: when a thread's window
    /// state is unrecoverably corrupt, the runtime evicts it from the
    /// register file wholesale (its windows become free for the healthy
    /// threads; nothing is flushed, the data is untrustworthy anyway).
    ///
    /// # Errors
    ///
    /// Fails for an unknown thread id.
    pub fn release_thread(&mut self, t: ThreadId) -> Result<(), SchemeError> {
        Ok(self.machine.release_thread(t)?)
    }

    /// Executes a `save` (procedure entry), resolving any overflow trap
    /// through the scheme.
    ///
    /// # Errors
    ///
    /// Fails if no thread is current or the scheme hits a broken
    /// invariant.
    pub fn save(&mut self) -> Result<(), SchemeError> {
        match self.machine.try_save()? {
            ExecOutcome::Completed => Ok(()),
            ExecOutcome::Trapped(trap) => {
                let span = self.span_open(SpanKind::Trap, "overflow");
                self.scheme.on_overflow(&mut self.machine, trap)?;
                self.machine.complete_save()?;
                self.span_close(span, SpanKind::Trap, "overflow");
                self.audit_current()?;
                Ok(())
            }
        }
    }

    /// Executes a plain `restore` (procedure return), resolving any
    /// underflow trap through the scheme.
    ///
    /// # Errors
    ///
    /// Fails on a return past the thread's outermost frame.
    pub fn restore(&mut self) -> Result<(), SchemeError> {
        self.restore_with(&RestoreInstr::trivial())
    }

    /// Executes a `restore` carrying add semantics (the peephole-optimised
    /// form of paper §4.3): when the restore completes without trapping
    /// the add is applied directly; when it traps, the scheme's handler
    /// emulates it.
    ///
    /// # Errors
    ///
    /// Fails on a return past the thread's outermost frame.
    pub fn restore_with(&mut self, instr: &RestoreInstr) -> Result<(), SchemeError> {
        // Sources are read in the callee's window, which the restore (or
        // the in-place handler) replaces — read them up front.
        let result =
            if instr.is_trivial() { None } else { Some(instr.read_sources(&self.machine)?) };
        match self.machine.try_restore()? {
            ExecOutcome::Completed => {
                if let Some(v) = result {
                    instr.write_destination(&mut self.machine, v)?;
                }
                Ok(())
            }
            ExecOutcome::Trapped(trap) => {
                let span = self.span_open(SpanKind::Trap, "underflow");
                match self.scheme.on_underflow(&mut self.machine, trap, instr)? {
                    UnderflowResolution::AlreadyComplete => {
                        self.span_close(span, SpanKind::Trap, "underflow");
                        self.audit_current()?;
                        Ok(())
                    }
                    UnderflowResolution::CompleteRestore => {
                        self.machine.complete_restore()?;
                        if let Some(v) = result {
                            instr.write_destination(&mut self.machine, v)?;
                        }
                        self.span_close(span, SpanKind::Trap, "underflow");
                        self.audit_current()?;
                        Ok(())
                    }
                }
            }
        }
    }

    /// Switches to thread `to` (no-op if already current), applying the
    /// scheme's context-switch policy and cost.
    ///
    /// # Errors
    ///
    /// Fails if no window can be allocated for `to`.
    pub fn switch_to(&mut self, to: ThreadId) -> Result<(), SchemeError> {
        let from = self.machine.current_thread();
        if from == Some(to) {
            return Ok(());
        }
        // Audit the outgoing thread before its windows are disturbed and
        // the incoming one once it is resumed, so corruption is pinned to
        // the thread that owned the CPU when it happened.
        if let Some(f) = from {
            let span = self.audit_span_open();
            self.machine.audit_thread(f)?;
            self.span_close(span, SpanKind::Audit, "audit");
        }
        let span = self.span_open(SpanKind::Switch, "switch");
        self.scheme.context_switch(&mut self.machine, from, to)?;
        self.span_close(span, SpanKind::Switch, "switch");
        self.audit_current()?;
        Ok(())
    }

    /// Terminates the current thread, releasing all its windows and
    /// memory frames. The CPU is left with no current thread; switch to
    /// another thread to continue.
    ///
    /// # Errors
    ///
    /// Fails if no thread is current.
    pub fn terminate_current(&mut self) -> Result<ThreadId, SchemeError> {
        let t = self.machine.current_thread().ok_or(SchemeError::NoCurrentThread)?;
        self.machine.release_thread(t)?;
        Ok(t)
    }

    /// Charges application compute cycles.
    pub fn compute(&mut self, cycles: u64) {
        self.machine.compute(cycles);
    }

    /// Advances the machine's clock to an externally supplied `tick`,
    /// charging the gap as bus-stall idle time; see
    /// [`regwin_machine::Machine::step_to_tick`]. Returns the cycles
    /// charged.
    pub fn step_to_tick(&mut self, tick: u64) -> u64 {
        self.machine.step_to_tick(tick)
    }

    /// Reads `local` register `reg` of the current window.
    ///
    /// # Errors
    ///
    /// Fails if no thread is current.
    pub fn read_local(&self, reg: usize) -> Result<u64, SchemeError> {
        Ok(self.machine.read_local(reg)?)
    }

    /// Writes `local` register `reg` of the current window.
    ///
    /// # Errors
    ///
    /// Fails if no thread is current.
    pub fn write_local(&mut self, reg: usize, value: u64) -> Result<(), SchemeError> {
        Ok(self.machine.write_local(reg, value)?)
    }

    /// Reads `in` register `reg` of the current window.
    ///
    /// # Errors
    ///
    /// Fails if no thread is current.
    pub fn read_in(&self, reg: usize) -> Result<u64, SchemeError> {
        Ok(self.machine.read_in(reg)?)
    }

    /// Writes `in` register `reg` of the current window.
    ///
    /// # Errors
    ///
    /// Fails if no thread is current.
    pub fn write_in(&mut self, reg: usize, value: u64) -> Result<(), SchemeError> {
        Ok(self.machine.write_in(reg, value)?)
    }

    /// Reads `out` register `reg` of the current window.
    ///
    /// # Errors
    ///
    /// Fails if no thread is current.
    pub fn read_out(&self, reg: usize) -> Result<u64, SchemeError> {
        Ok(self.machine.read_out(reg)?)
    }

    /// Writes `out` register `reg` of the current window.
    ///
    /// # Errors
    ///
    /// Fails if no thread is current.
    pub fn write_out(&mut self, reg: usize, value: u64) -> Result<(), SchemeError> {
        Ok(self.machine.write_out(reg, value)?)
    }

    /// Reads global register `reg` (`%g0` always reads zero).
    pub fn read_global(&self, reg: usize) -> u64 {
        self.machine.read_global(reg)
    }

    /// Writes global register `reg` (writes to `%g0` are discarded).
    pub fn write_global(&mut self, reg: usize, value: u64) {
        self.machine.write_global(reg, value);
    }

    /// The machine's event statistics.
    pub fn stats(&self) -> &MachineStats {
        self.machine.stats()
    }

    /// Total simulated cycles so far.
    pub fn total_cycles(&self) -> u64 {
        self.machine.cycles().total()
    }

    /// Verifies all machine invariants (tests/diagnostics).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), SchemeError> {
        Ok(self.machine.check_invariants()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restore_emul::{Operand, Reg};
    use crate::schemes::{NsScheme, SnpScheme, SpScheme};

    fn all_cpus(n: usize) -> Vec<Cpu> {
        vec![
            Cpu::new(n, Box::new(NsScheme::new())).unwrap(),
            Cpu::new(n, Box::new(SnpScheme::new())).unwrap(),
            Cpu::new(n, Box::new(SpScheme::new())).unwrap(),
        ]
    }

    #[test]
    fn switch_to_current_thread_is_a_noop() {
        for mut cpu in all_cpus(8) {
            let t = cpu.add_thread();
            cpu.switch_to(t).unwrap();
            let switches = cpu.stats().context_switches;
            cpu.switch_to(t).unwrap();
            assert_eq!(cpu.stats().context_switches, switches);
        }
    }

    #[test]
    fn restore_with_add_semantics_works_trap_free_and_trapped() {
        for mut cpu in all_cpus(4) {
            let t = cpu.add_thread();
            cpu.switch_to(t).unwrap();
            // Trap-free: save then restore with an add.
            cpu.save().unwrap();
            cpu.write_local(0, 20).unwrap();
            let instr = RestoreInstr::new(Reg::L(0), Operand::Imm(2), Reg::O(0));
            cpu.restore_with(&instr).unwrap();
            assert_eq!(cpu.read_out(0).unwrap(), 22);
            // Trapped: recurse past the file, unwind with adds.
            for _ in 0..6 {
                cpu.save().unwrap();
            }
            let traps_before = cpu.stats().underflow_traps;
            for _ in 0..6 {
                cpu.write_local(0, 30).unwrap();
                let instr = RestoreInstr::new(Reg::L(0), Operand::Imm(5), Reg::O(3));
                cpu.restore_with(&instr).unwrap();
                assert_eq!(cpu.read_out(3).unwrap(), 35, "{:?}", cpu.scheme_kind());
            }
            assert!(cpu.stats().underflow_traps > traps_before);
            cpu.check_invariants().unwrap();
        }
    }

    #[test]
    fn terminate_releases_windows_for_subsequent_threads() {
        for mut cpu in all_cpus(8) {
            let a = cpu.add_thread();
            let b = cpu.add_thread();
            cpu.switch_to(a).unwrap();
            cpu.save().unwrap();
            let done = cpu.terminate_current().unwrap();
            assert_eq!(done, a);
            assert!(cpu.current_thread().is_none());
            cpu.switch_to(b).unwrap();
            cpu.save().unwrap();
            cpu.restore().unwrap();
            cpu.check_invariants().unwrap();
        }
    }

    #[test]
    fn total_cycles_accumulate() {
        for mut cpu in all_cpus(8) {
            let t = cpu.add_thread();
            cpu.switch_to(t).unwrap();
            let c0 = cpu.total_cycles();
            cpu.compute(1000);
            cpu.save().unwrap();
            cpu.restore().unwrap();
            assert!(cpu.total_cycles() >= c0 + 1002);
        }
    }

    #[test]
    fn trap_spans_carry_the_cycles_the_counter_attributes() {
        use regwin_machine::CycleCategory;
        use regwin_obs::{OwnedProbeEvent, RecordingProbe};
        for mut cpu in all_cpus(4) {
            let probe = Arc::new(RecordingProbe::new());
            cpu.set_probe(Some(probe.clone()));
            let t = cpu.add_thread();
            cpu.switch_to(t).unwrap();
            for _ in 0..6 {
                cpu.save().unwrap();
            }
            for _ in 0..6 {
                cpu.restore().unwrap();
            }
            // Every taken trap produced one span; the summed span cycles
            // equal the trap-category cycle attribution (overflow and
            // underflow handlers charge only their own categories).
            let span_cycles: u64 = probe
                .events()
                .iter()
                .map(|e| match e {
                    OwnedProbeEvent::SpanEnd { kind: SpanKind::Trap, cycles, .. } => *cycles,
                    _ => 0,
                })
                .sum();
            // The spans also cover the WindowInstr cycles of the
            // re-executed save/restore inside the handler, so the summed
            // span cycles bound the trap-category attribution from above.
            let trap_cycles = cpu.machine().cycles().category(CycleCategory::OverflowTrap)
                + cpu.machine().cycles().category(CycleCategory::UnderflowTrap);
            let traps = cpu.stats().overflow_traps + cpu.stats().underflow_traps;
            assert_eq!(probe.span_count(SpanKind::Trap) as u64, traps, "{:?}", cpu.scheme_kind());
            assert!(span_cycles >= trap_cycles, "{:?}", cpu.scheme_kind());
            assert!(trap_cycles > 0, "{:?}", cpu.scheme_kind());
            cpu.check_invariants().unwrap();
        }
    }

    #[test]
    fn switch_spans_cover_every_context_switch() {
        use regwin_obs::RecordingProbe;
        for mut cpu in all_cpus(8) {
            let probe = Arc::new(RecordingProbe::new());
            cpu.set_probe(Some(probe.clone()));
            let a = cpu.add_thread();
            let b = cpu.add_thread();
            cpu.switch_to(a).unwrap();
            cpu.switch_to(b).unwrap();
            cpu.switch_to(b).unwrap(); // no-op: not a switch, no span
            cpu.switch_to(a).unwrap();
            assert_eq!(
                probe.span_count(SpanKind::Switch) as u64,
                cpu.stats().context_switches,
                "{:?}",
                cpu.scheme_kind()
            );
        }
    }

    /// Cross-scheme differential test: the same call/return/switch trace
    /// must produce identical register observations under all three
    /// schemes (the schemes differ in cost, never in semantics).
    #[test]
    fn schemes_agree_on_register_semantics() {
        let trace: Vec<(usize, &str)> = vec![
            (0, "call"),
            (0, "call"),
            (1, "sched"),
            (1, "call"),
            (0, "sched"),
            (0, "ret"),
            (2, "sched"),
            (2, "call"),
            (2, "call"),
            (1, "sched"),
            (1, "ret"),
            (0, "sched"),
            (0, "ret"),
            (2, "sched"),
            (2, "ret"),
            (2, "ret"),
            (1, "sched"),
            (0, "sched"),
            (0, "call"),
        ];
        let mut observations: Vec<Vec<u64>> = Vec::new();
        for mut cpu in all_cpus(5) {
            let threads: Vec<_> = (0..3).map(|_| cpu.add_thread()).collect();
            let mut obs = Vec::new();
            let mut counter = 0u64;
            cpu.switch_to(threads[0]).unwrap();
            for (tid, op) in &trace {
                let t = threads[*tid];
                match *op {
                    "sched" => cpu.switch_to(t).unwrap(),
                    "call" => {
                        cpu.switch_to(t).unwrap();
                        counter += 1;
                        cpu.write_out(0, counter).unwrap();
                        cpu.save().unwrap();
                        obs.push(cpu.read_in(0).unwrap()); // argument arrived
                        cpu.write_local(0, counter).unwrap();
                    }
                    "ret" => {
                        cpu.switch_to(t).unwrap();
                        counter += 1;
                        cpu.write_in(0, counter).unwrap();
                        cpu.restore().unwrap();
                        obs.push(cpu.read_out(0).unwrap()); // return value
                        obs.push(cpu.read_local(0).unwrap()); // caller's local
                    }
                    _ => unreachable!(),
                }
                cpu.check_invariants().unwrap();
            }
            observations.push(obs);
        }
        assert_eq!(observations[0], observations[1], "NS vs SNP");
        assert_eq!(observations[0], observations[2], "NS vs SP");
    }

    #[test]
    fn audited_cpu_repairs_masked_fill_corruption_transparently() {
        use regwin_machine::TransferFault;
        for mut cpu in all_cpus(4) {
            cpu.enable_window_audit();
            // Corrupt the first three fill transfers; the audit pass at
            // each underflow-trap boundary must repair them before the
            // application reads the restored registers.
            let mut faults = FaultSchedule::new();
            for i in 0..3 {
                faults = faults.on_fill(i, TransferFault::Corrupt { xor: 0xdead });
            }
            cpu.set_fault_schedule(Some(faults));
            let t = cpu.add_thread();
            cpu.switch_to(t).unwrap();
            cpu.write_local(0, 100).unwrap();
            for depth in 2..=8u64 {
                cpu.save().unwrap();
                cpu.write_local(0, 100 * depth).unwrap();
            }
            for depth in (1..=7u64).rev() {
                cpu.restore().unwrap();
                assert_eq!(
                    cpu.read_local(0).unwrap(),
                    100 * depth,
                    "{:?} depth {depth}",
                    cpu.scheme_kind()
                );
            }
            assert!(cpu.window_repairs() > 0, "{:?}", cpu.scheme_kind());
            cpu.check_invariants().unwrap();
        }
    }
}
