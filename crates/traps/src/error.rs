//! Error type for scheme operations.

use regwin_machine::{MachineError, WindowIndex};
use std::error::Error;
use std::fmt;

/// Errors raised by window-management schemes and the [`crate::Cpu`].
///
/// The enum is `#[non_exhaustive]`: downstream matches must include a
/// wildcard arm, so new failure modes can be added without a breaking
/// release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchemeError {
    /// An underlying machine operation failed.
    Machine(MachineError),
    /// A trap arrived at a window the scheme's invariants say it cannot
    /// arrive at (a bug, or a machine driven outside the scheme's rules).
    UnexpectedTrapTarget {
        /// The trap's target window.
        target: WindowIndex,
        /// What the scheme expected the target to be.
        expected: &'static str,
    },
    /// No window could be allocated for an incoming thread.
    AllocationFailed(&'static str),
    /// The machine has fewer windows than the scheme needs to operate.
    TooFewWindows {
        /// Windows present.
        have: usize,
        /// Windows the scheme needs.
        need: usize,
    },
    /// An operation that needs a running thread was invoked without one.
    NoCurrentThread,
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::Machine(e) => write!(f, "machine error: {e}"),
            SchemeError::UnexpectedTrapTarget { target, expected } => {
                write!(f, "trap at unexpected window {target} (expected {expected})")
            }
            SchemeError::AllocationFailed(why) => write!(f, "window allocation failed: {why}"),
            SchemeError::TooFewWindows { have, need } => {
                write!(f, "scheme needs {need} windows, machine has {have}")
            }
            SchemeError::NoCurrentThread => write!(f, "no current thread"),
        }
    }
}

impl Error for SchemeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchemeError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for SchemeError {
    fn from(e: MachineError) -> Self {
        SchemeError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_source_chains() {
        let e = SchemeError::from(MachineError::NoCurrentThread);
        assert!(!e.to_string().is_empty());
        assert!(Error::source(&e).is_some());
        let e = SchemeError::TooFewWindows { have: 2, need: 3 };
        assert!(e.to_string().contains('3'));
        assert!(Error::source(&e).is_none());
    }
}
