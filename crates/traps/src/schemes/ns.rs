//! NS — the non-sharing scheme (paper §4.5).
//!
//! The conventional management algorithm: windows are never shared among
//! threads. A context switch flushes *every* active window of the
//! suspended thread to memory and restores the incoming thread's
//! stack-top window; all other windows become valid garbage the incoming
//! thread may overwrite trap-free (the single-WIM-bit behaviour of real
//! SPARC kernels). Underflow is handled conventionally.
//!
//! This is the scheme whose switch cost grows linearly with the number of
//! active windows (Table 2's NS rows) and which carries the "hidden
//! overhead" that frames flushed at a switch must later be pulled back
//! one underflow trap at a time (§6.2).

use crate::conventional::handle_conventional_underflow;
use crate::error::SchemeError;
use crate::restore_emul::RestoreInstr;
use crate::scheme::{Scheme, UnderflowResolution};
use regwin_machine::{Machine, SchemeKind, ThreadId, TransferReason, WindowTrap};

/// The non-sharing scheme. See the module docs.
#[derive(Debug, Clone)]
pub struct NsScheme {
    overflow_batch: usize,
    underflow_batch: usize,
}

impl NsScheme {
    /// Creates the scheme with the paper's configuration (one window
    /// transferred per trap — the optimum Tamir & Sequin established and
    /// the paper adopts, §2).
    pub fn new() -> Self {
        NsScheme { overflow_batch: 1, underflow_batch: 1 }
    }

    /// Spills up to `batch` windows per overflow trap (the Tamir–Sequin
    /// ablation: batching saves trap overhead on deep call bursts but
    /// wastes transfers on oscillating call depths).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn with_overflow_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be at least one window");
        self.overflow_batch = batch;
        self
    }

    /// Restores up to `batch` windows per underflow trap.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn with_underflow_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be at least one window");
        self.underflow_batch = batch;
        self
    }
}

impl Default for NsScheme {
    fn default() -> Self {
        NsScheme::new()
    }
}

impl Scheme for NsScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Ns
    }

    fn min_windows(&self) -> usize {
        // Current frame + reserved window + one slot for the reservation
        // to retreat into on underflow.
        3
    }

    fn init(&mut self, m: &mut Machine) -> Result<(), SchemeError> {
        // The machine's default single reserved window is exactly what
        // the conventional algorithm uses.
        debug_assert!(m.reserved().is_some());
        Ok(())
    }

    fn on_overflow(&mut self, m: &mut Machine, trap: WindowTrap) -> Result<(), SchemeError> {
        // Under NS the only invalid window for the running thread is the
        // reservation, so the trap target must be it.
        if m.reserved() != Some(trap.target()) {
            return Err(SchemeError::UnexpectedTrapTarget {
                target: trap.target(),
                expected: "the reserved window",
            });
        }
        let mut spills = m.force_reserved_walk()?;
        // Batched variant (Tamir–Sequin ablation): keep walking, spilling
        // further windows ahead of demand.
        for _ in 1..self.overflow_batch {
            spills += m.force_reserved_walk()?;
        }
        m.charge_overflow_trap(spills);
        Ok(())
    }

    fn on_underflow(
        &mut self,
        m: &mut Machine,
        trap: WindowTrap,
        _instr: &RestoreInstr,
    ) -> Result<UnderflowResolution, SchemeError> {
        handle_conventional_underflow(m, trap)?;
        // Batched variant: refill further frames below the caller ahead
        // of demand, while memory frames remain and the ring has room.
        if self.underflow_batch > 1 {
            let t = m.current_thread().ok_or(SchemeError::NoCurrentThread)?;
            let n = m.nwindows();
            let mut extra = 0u64;
            for _ in 1..self.underflow_batch {
                let target = match m.reserved() {
                    Some(r) => r,
                    None => break,
                };
                if m.backing_of(t)?.is_empty() {
                    break;
                }
                let next_reserved = target.below(n);
                if !m.slot_use(next_reserved).is_discardable() {
                    break; // the ring is full of live frames
                }
                m.set_reserved(Some(next_reserved))?;
                m.restore_into(t, target, regwin_machine::TransferReason::Trap)?;
                extra += 1;
            }
            m.charge_refill_extra(extra as usize);
        }
        Ok(UnderflowResolution::CompleteRestore)
    }

    fn context_switch(
        &mut self,
        m: &mut Machine,
        from: Option<ThreadId>,
        to: ThreadId,
    ) -> Result<(), SchemeError> {
        let mut saves = 0u32;
        let mut restores = 0u32;
        if let Some(f) = from {
            // Flush everything: top outs to the TCB, then every live
            // frame to memory (bottom first), then release the garbage.
            m.save_outs_to_tcb(f)?;
            saves += m.flush_thread(f, TransferReason::Switch)? as u32;
            m.release_dead_slots(f)?;
        }
        // Classic placement: the incoming stack-top directly above the
        // reservation, preserving the invariant that the reserved window
        // sits directly below the stack-bottom.
        let reserved =
            m.reserved().ok_or(SchemeError::AllocationFailed("NS requires a reserved window"))?;
        let slot = reserved.above(m.nwindows());
        let started = m.thread(to)?.started();
        if started {
            debug_assert_eq!(m.thread(to)?.resident(), 0, "NS leaves no windows resident");
            m.restore_into(to, slot, TransferReason::Switch)?;
            restores += 1;
        } else {
            m.start_initial_frame(to, slot)?;
        }
        // Everything else in the file is flushed garbage: valid for the
        // incoming thread, exactly like a single-bit WIM.
        m.grant_all_free(to)?;
        m.set_current(Some(to))?;
        if started {
            m.restore_outs_from_tcb(to)?;
        }
        m.record_context_switch(from, SchemeKind::Ns, saves, restores);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;

    #[test]
    fn switch_flushes_all_windows_and_restores_one() {
        let mut cpu = Cpu::new(8, Box::new(NsScheme::new())).unwrap();
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.save().unwrap();
        cpu.save().unwrap(); // a has 3 live frames
        cpu.switch_to(b).unwrap();
        let m = cpu.machine();
        assert_eq!(m.thread(a).unwrap().resident(), 0);
        assert_eq!(m.backing_of(a).unwrap().len(), 3);
        // The b-switch saved 3 windows; b was fresh so restored none.
        let stats = m.stats();
        assert_eq!(stats.switch_saves, 3);
        cpu.check_invariants().unwrap();
    }

    #[test]
    fn resume_restores_exactly_one_window() {
        let mut cpu = Cpu::new(8, Box::new(NsScheme::new())).unwrap();
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.save().unwrap();
        cpu.switch_to(b).unwrap();
        let restores_before = cpu.machine().stats().switch_restores;
        cpu.switch_to(a).unwrap();
        assert_eq!(cpu.machine().stats().switch_restores, restores_before + 1);
        assert_eq!(cpu.machine().thread(a).unwrap().resident(), 1);
    }

    #[test]
    fn flushed_frames_return_via_underflow_traps() {
        // The "hidden overhead" of §6.2: after a flush, returning needs
        // one underflow trap per frame.
        let mut cpu = Cpu::new(8, Box::new(NsScheme::new())).unwrap();
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.write_local(0, 10).unwrap();
        cpu.save().unwrap();
        cpu.write_local(0, 20).unwrap();
        cpu.save().unwrap();
        cpu.write_local(0, 30).unwrap();
        cpu.switch_to(b).unwrap();
        cpu.switch_to(a).unwrap();
        assert_eq!(cpu.read_local(0).unwrap(), 30);
        let traps_before = cpu.machine().stats().underflow_traps;
        cpu.restore().unwrap();
        assert_eq!(cpu.read_local(0).unwrap(), 20);
        cpu.restore().unwrap();
        assert_eq!(cpu.read_local(0).unwrap(), 10);
        assert_eq!(cpu.machine().stats().underflow_traps, traps_before + 2);
        cpu.check_invariants().unwrap();
    }

    #[test]
    fn register_values_survive_round_trips() {
        let mut cpu = Cpu::new(8, Box::new(NsScheme::new())).unwrap();
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.write_local(3, 111).unwrap();
        cpu.switch_to(b).unwrap();
        cpu.write_local(3, 222).unwrap();
        cpu.switch_to(a).unwrap();
        assert_eq!(cpu.read_local(3).unwrap(), 111);
        cpu.switch_to(b).unwrap();
        assert_eq!(cpu.read_local(3).unwrap(), 222);
    }

    #[test]
    fn saves_after_resume_do_not_trap_until_wraparound() {
        let n = 8;
        let mut cpu = Cpu::new(n, Box::new(NsScheme::new())).unwrap();
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.switch_to(b).unwrap();
        let traps_before = cpu.machine().stats().overflow_traps;
        // n - 2 saves fit without touching the reservation (1 initial
        // frame + n - 2 new ones + 1 reserved = n).
        for _ in 0..n - 2 {
            cpu.save().unwrap();
        }
        assert_eq!(cpu.machine().stats().overflow_traps, traps_before);
        cpu.save().unwrap(); // wraps: must trap and spill own bottom
        assert_eq!(cpu.machine().stats().overflow_traps, traps_before + 1);
        assert_eq!(cpu.machine().stats().overflow_spills, 1);
    }

    #[test]
    fn overflow_batch_spills_ahead_of_demand() {
        let run = |batch: usize| {
            let mut cpu =
                Cpu::new(6, Box::new(NsScheme::new().with_overflow_batch(batch))).unwrap();
            let t = cpu.add_thread();
            cpu.switch_to(t).unwrap();
            for _ in 0..12 {
                cpu.save().unwrap();
            }
            (cpu.machine().stats().overflow_traps, cpu.machine().stats().overflow_spills)
        };
        let (traps1, _) = run(1);
        let (traps2, spills2) = run(2);
        assert!(traps2 < traps1, "batching must reduce trap count");
        assert!(spills2 > 0);
    }

    #[test]
    fn underflow_batch_refills_ahead_of_demand() {
        let run = |batch: usize| {
            let mut cpu =
                Cpu::new(6, Box::new(NsScheme::new().with_underflow_batch(batch))).unwrap();
            let t = cpu.add_thread();
            cpu.switch_to(t).unwrap();
            cpu.write_local(0, 0).unwrap();
            for d in 1..=12u64 {
                cpu.save().unwrap();
                cpu.write_local(0, d).unwrap();
            }
            for d in (0..12u64).rev() {
                cpu.restore().unwrap();
                assert_eq!(cpu.read_local(0).unwrap(), d, "batch {batch}");
            }
            cpu.machine().stats().underflow_traps
        };
        let traps1 = run(1);
        let traps3 = run(3);
        assert!(traps3 < traps1, "batched refill must reduce underflow traps");
    }

    #[test]
    fn batched_unwind_preserves_values_after_switches() {
        let mut cpu =
            Cpu::new(8, Box::new(NsScheme::new().with_overflow_batch(2).with_underflow_batch(2)))
                .unwrap();
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        for d in 1..=10u64 {
            cpu.save().unwrap();
            cpu.write_local(0, d).unwrap();
        }
        cpu.switch_to(b).unwrap();
        cpu.save().unwrap();
        cpu.switch_to(a).unwrap();
        for d in (1..=9u64).rev() {
            cpu.restore().unwrap();
            assert_eq!(cpu.read_local(0).unwrap(), d);
            cpu.check_invariants().unwrap();
        }
    }

    #[test]
    fn rejects_machines_below_three_windows() {
        assert!(matches!(
            Cpu::new(2, Box::new(NsScheme::new())),
            Err(SchemeError::TooFewWindows { .. })
        ));
    }
}
