//! SP — sharing with private reserved windows (paper §4.5).
//!
//! Every thread keeps its own private reserved window (PRW) directly
//! above its stack-top. Because the PRW's `in` registers *are* the
//! physical home of the stack-top's `out` registers, nothing needs to be
//! saved or restored when switching to a thread whose windows are still
//! resident — the paper's best case of 93–98 cycles, with **zero** window
//! transfers.
//!
//! The costs appear elsewhere: every resident thread consumes one extra
//! slot for its PRW, and scheduling a windowless thread may require two
//! windows to be saved (one for the new stack-top, one for the new PRW) —
//! Table 2's SP worst case.

use crate::alloc::{displace, AllocPolicy, Allocator, DisplaceOutcome};
use crate::error::SchemeError;
use crate::inplace::{handle_inplace_underflow, CopyMode};
use crate::restore_emul::RestoreInstr;
use crate::scheme::{Scheme, UnderflowResolution};
use regwin_machine::{CycleCategory, Machine, SchemeKind, ThreadId, TransferReason, WindowTrap};

/// The sharing scheme with a private reserved window per thread. See the
/// module docs.
#[derive(Debug, Clone)]
pub struct SpScheme {
    copy_mode: CopyMode,
    flush_on_suspend: bool,
    alloc: Allocator,
}

impl SpScheme {
    /// Creates the scheme with the paper's configuration: full in-copy,
    /// windows left in situ on suspension, simple allocation.
    pub fn new() -> Self {
        SpScheme {
            copy_mode: CopyMode::Full,
            flush_on_suspend: false,
            alloc: Allocator::new(AllocPolicy::AboveSuspended),
        }
    }

    /// Selects which `in` registers the underflow handler copies (§4.3).
    #[must_use]
    pub fn with_copy_mode(mut self, mode: CopyMode) -> Self {
        self.copy_mode = mode;
        self
    }

    /// Enables the flush-type context switch of §4.4.
    #[must_use]
    pub fn with_flush_on_suspend(mut self, flush: bool) -> Self {
        self.flush_on_suspend = flush;
        self
    }

    /// Selects the allocation policy for windowless incoming threads
    /// (§4.2).
    #[must_use]
    pub fn with_alloc_policy(mut self, policy: AllocPolicy) -> Self {
        self.alloc = Allocator::new(policy);
        self
    }

    /// Charges the TCB `out`-register traffic a displacement caused.
    fn charge_displacement_outs(m: &mut Machine, out: &DisplaceOutcome) {
        if out.stole_prw {
            m.charge_outs_transfer(CycleCategory::ContextSwitch, 1);
        }
    }
}

impl Default for SpScheme {
    fn default() -> Self {
        SpScheme::new()
    }
}

impl Scheme for SpScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Sp
    }

    fn min_windows(&self) -> usize {
        2
    }

    fn init(&mut self, m: &mut Machine) -> Result<(), SchemeError> {
        // SP has no global reserved window; every thread brings its own.
        m.set_reserved(None)?;
        Ok(())
    }

    fn on_overflow(&mut self, m: &mut Machine, trap: WindowTrap) -> Result<(), SchemeError> {
        let t = m.current_thread().ok_or(SchemeError::NoCurrentThread)?;
        if m.thread(t)?.prw() != Some(trap.target()) {
            return Err(SchemeError::UnexpectedTrapTarget {
                target: trap.target(),
                expected: "the current thread's PRW",
            });
        }
        let (spills, steals) = m.force_prw_walk()?;
        m.charge_overflow_trap(spills);
        m.charge_outs_transfer(CycleCategory::OverflowTrap, steals);
        Ok(())
    }

    fn on_underflow(
        &mut self,
        m: &mut Machine,
        _trap: WindowTrap,
        instr: &RestoreInstr,
    ) -> Result<UnderflowResolution, SchemeError> {
        handle_inplace_underflow(m, self.copy_mode, instr)?;
        Ok(UnderflowResolution::AlreadyComplete)
    }

    fn context_switch(
        &mut self,
        m: &mut Machine,
        from: Option<ThreadId>,
        to: ThreadId,
    ) -> Result<(), SchemeError> {
        let n = m.nwindows();
        let mut saves = 0u32;
        let mut restores = 0u32;
        if let Some(f) = from {
            if self.flush_on_suspend {
                saves += m.flush_thread(f, TransferReason::Switch)? as u32;
            }
            m.release_dead_slots(f)?;
            // Reposition the suspended thread's PRW directly above its
            // stack-top ("since the reserved window has no information to
            // be copied, there is no overhead in doing so", §4.1): the
            // stack-top outs physically live in the slot above the top,
            // which is exactly where the PRW lands.
            if let Some(top) = m.thread(f)?.top() {
                let desired = top.above(n);
                if m.thread(f)?.prw() != Some(desired) {
                    if m.thread(f)?.prw().is_some() {
                        m.release_prw(f)?;
                    }
                    m.assign_prw(f, desired)?;
                }
            }
        }
        let ts = m.thread(to)?;
        if ts.started() && ts.resident() > 0 {
            if ts.prw().is_some() {
                // The best case: windows and PRW (holding the stack-top
                // outs) are all still resident — nothing moves.
                m.set_current(Some(to))?;
            } else {
                // The PRW was stolen while suspended: its outs sit in the
                // TCB. Build a new PRW above the stack-top and refill it.
                let desired = ts.top().expect("resident > 0 implies top").above(n);
                let out = displace(m, desired)?;
                saves += out.saves();
                Self::charge_displacement_outs(m, &out);
                m.assign_prw(to, desired)?;
                m.set_current(Some(to))?;
                m.restore_outs_from_tcb(to)?;
                m.charge_outs_transfer(CycleCategory::ContextSwitch, 1);
            }
        } else {
            // Windowless (or never started): allocate a stack-top slot and
            // a PRW above it — the case that "may have to save two
            // windows" (§4.1).
            let started = ts.started();
            if ts.prw().is_some() {
                // Windows all spilled but the PRW survived: capture the
                // outs it holds and release it; the allocation below
                // builds a fresh pair.
                m.steal_prw(to)?;
            }
            let candidate = match from {
                Some(f) => m.thread(f)?.prw().map(|p| p.above(n)),
                None => None,
            };
            let slot = self.alloc.pick_top_slot(m, candidate, to)?;
            let out = displace(m, slot)?;
            saves += out.saves();
            Self::charge_displacement_outs(m, &out);
            let prw_slot = slot.above(n);
            let out = displace(m, prw_slot)?;
            saves += out.saves();
            Self::charge_displacement_outs(m, &out);
            if started {
                m.restore_into(to, slot, TransferReason::Switch)?;
                restores += 1;
            } else {
                m.start_initial_frame(to, slot)?;
            }
            m.assign_prw(to, prw_slot)?;
            m.set_current(Some(to))?;
            if started {
                m.restore_outs_from_tcb(to)?;
                m.charge_outs_transfer(CycleCategory::ContextSwitch, 1);
            }
        }
        self.alloc.note_scheduled(to);
        m.record_context_switch(from, SchemeKind::Sp, saves, restores);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use regwin_machine::SwitchShape;

    fn cpu(n: usize) -> Cpu {
        Cpu::new(n, Box::new(SpScheme::new())).unwrap()
    }

    #[test]
    fn resident_resume_is_a_zero_transfer_switch() {
        let mut cpu = cpu(16);
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.save().unwrap();
        cpu.switch_to(b).unwrap();
        cpu.switch_to(a).unwrap(); // best case: nothing moves
        let stats = cpu.machine().stats();
        assert!(stats.switch_shapes.contains_key(&SwitchShape { saves: 0, restores: 0 }));
        assert_eq!(stats.switch_saves, 0);
        assert_eq!(stats.switch_restores, 0);
        cpu.check_invariants().unwrap();
    }

    #[test]
    fn every_resident_thread_keeps_a_prw_above_its_top() {
        let mut cpu = cpu(16);
        let threads: Vec<_> = (0..3).map(|_| cpu.add_thread()).collect();
        for &t in &threads {
            cpu.switch_to(t).unwrap();
            cpu.save().unwrap();
        }
        let m = cpu.machine();
        for &t in &threads {
            let ts = m.thread(t).unwrap();
            let top = ts.top().unwrap();
            assert_eq!(ts.prw(), Some(top.above(16)), "PRW adjacency for {t}");
        }
        cpu.check_invariants().unwrap();
    }

    #[test]
    fn outs_survive_without_tcb_traffic_when_prw_resident() {
        let mut cpu = cpu(16);
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.write_out(6, 4096).unwrap(); // lives in a's PRW
        cpu.switch_to(b).unwrap();
        cpu.write_out(6, 8192).unwrap();
        cpu.switch_to(a).unwrap();
        assert_eq!(cpu.read_out(6).unwrap(), 4096);
    }

    #[test]
    fn stolen_prw_outs_come_back_from_tcb() {
        // Small file, three threads: scheduling c forces displacement of
        // earlier threads' slots, stealing PRWs; outs must still survive.
        let mut cpu = cpu(4);
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        let c = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.write_out(1, 71).unwrap();
        cpu.switch_to(b).unwrap();
        cpu.write_out(1, 72).unwrap();
        cpu.switch_to(c).unwrap();
        cpu.write_out(1, 73).unwrap();
        cpu.switch_to(a).unwrap();
        assert_eq!(cpu.read_out(1).unwrap(), 71);
        cpu.switch_to(b).unwrap();
        assert_eq!(cpu.read_out(1).unwrap(), 72);
        cpu.switch_to(c).unwrap();
        assert_eq!(cpu.read_out(1).unwrap(), 73);
        cpu.check_invariants().unwrap();
    }

    #[test]
    fn windowless_allocation_can_need_two_saves() {
        // Fill a 4-window file with two threads (frame + PRW each), then
        // schedule a third: both its slots displace live data.
        let mut cpu = cpu(4);
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        let c = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.switch_to(b).unwrap();
        cpu.switch_to(c).unwrap();
        let stats = cpu.machine().stats();
        let max_saves = stats.switch_shapes.keys().map(|s| s.saves).max().unwrap();
        assert!(max_saves >= 1, "third thread's allocation must displace something");
        cpu.check_invariants().unwrap();
    }

    #[test]
    fn deep_calls_and_returns_with_switches_preserve_locals() {
        let mut cpu = cpu(6);
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.write_local(0, 1).unwrap();
        for d in 2..=5u64 {
            cpu.save().unwrap();
            cpu.write_local(0, d).unwrap();
        }
        cpu.switch_to(b).unwrap();
        cpu.write_local(0, 100).unwrap();
        cpu.save().unwrap();
        cpu.write_local(0, 101).unwrap();
        cpu.switch_to(a).unwrap();
        for d in (1..=4u64).rev() {
            cpu.restore().unwrap();
            assert_eq!(cpu.read_local(0).unwrap(), d);
        }
        cpu.switch_to(b).unwrap();
        assert_eq!(cpu.read_local(0).unwrap(), 101);
        cpu.restore().unwrap();
        assert_eq!(cpu.read_local(0).unwrap(), 100);
        cpu.check_invariants().unwrap();
    }

    #[test]
    fn works_at_two_windows() {
        let mut cpu = cpu(2);
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.write_local(0, 5).unwrap();
        cpu.switch_to(b).unwrap();
        cpu.write_local(0, 6).unwrap();
        cpu.switch_to(a).unwrap();
        assert_eq!(cpu.read_local(0).unwrap(), 5);
        cpu.switch_to(b).unwrap();
        assert_eq!(cpu.read_local(0).unwrap(), 6);
        cpu.check_invariants().unwrap();
    }

    #[test]
    fn no_global_reserved_window_exists() {
        let cpu = cpu(8);
        assert_eq!(cpu.machine().reserved(), None);
    }
}
