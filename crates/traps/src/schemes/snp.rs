//! SNP — sharing without private reserved windows (paper §4.5).
//!
//! Windows of suspended threads stay in the register file. There is a
//! single global reserved window, repositioned directly above the
//! incoming thread's stack-top on every context switch; because the
//! reservation is shared, the stack-top `out` registers (which physically
//! live in the window above the top) must be saved to and restored from
//! the TCB on every switch — the cost difference between SNP's and SP's
//! best cases in Table 2.
//!
//! Underflow uses the proposed in-place restore, so suspended threads'
//! windows are never disturbed by returns (paper §3.2).

use crate::alloc::{displace, AllocPolicy, Allocator};
use crate::error::SchemeError;
use crate::inplace::{handle_inplace_underflow, CopyMode};
use crate::restore_emul::RestoreInstr;
use crate::scheme::{Scheme, UnderflowResolution};
use regwin_machine::{Machine, SchemeKind, ThreadId, TransferReason, WindowTrap};

/// The sharing scheme without private reserved windows. See module docs.
#[derive(Debug, Clone)]
pub struct SnpScheme {
    copy_mode: CopyMode,
    flush_on_suspend: bool,
    alloc: Allocator,
}

impl SnpScheme {
    /// Creates the scheme with the paper's configuration: full in-copy,
    /// windows left in situ on suspension, simple allocation.
    pub fn new() -> Self {
        SnpScheme {
            copy_mode: CopyMode::Full,
            flush_on_suspend: false,
            alloc: Allocator::new(AllocPolicy::AboveSuspended),
        }
    }

    /// Selects which `in` registers the underflow handler copies (§4.3).
    #[must_use]
    pub fn with_copy_mode(mut self, mode: CopyMode) -> Self {
        self.copy_mode = mode;
        self
    }

    /// Enables the flush-type context switch of §4.4: the suspended
    /// thread's windows are written out eagerly at switch time.
    #[must_use]
    pub fn with_flush_on_suspend(mut self, flush: bool) -> Self {
        self.flush_on_suspend = flush;
        self
    }

    /// Selects the allocation policy for windowless incoming threads
    /// (§4.2; the paper evaluates only [`AllocPolicy::AboveSuspended`]).
    #[must_use]
    pub fn with_alloc_policy(mut self, policy: AllocPolicy) -> Self {
        self.alloc = Allocator::new(policy);
        self
    }
}

impl Default for SnpScheme {
    fn default() -> Self {
        SnpScheme::new()
    }
}

impl Scheme for SnpScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Snp
    }

    fn min_windows(&self) -> usize {
        2
    }

    fn init(&mut self, m: &mut Machine) -> Result<(), SchemeError> {
        debug_assert!(m.reserved().is_some());
        Ok(())
    }

    fn on_overflow(&mut self, m: &mut Machine, trap: WindowTrap) -> Result<(), SchemeError> {
        if m.reserved() != Some(trap.target()) {
            return Err(SchemeError::UnexpectedTrapTarget {
                target: trap.target(),
                expected: "the reserved window",
            });
        }
        let spills = m.force_reserved_walk()?;
        m.charge_overflow_trap(spills);
        Ok(())
    }

    fn on_underflow(
        &mut self,
        m: &mut Machine,
        _trap: WindowTrap,
        instr: &RestoreInstr,
    ) -> Result<UnderflowResolution, SchemeError> {
        handle_inplace_underflow(m, self.copy_mode, instr)?;
        Ok(UnderflowResolution::AlreadyComplete)
    }

    fn context_switch(
        &mut self,
        m: &mut Machine,
        from: Option<ThreadId>,
        to: ThreadId,
    ) -> Result<(), SchemeError> {
        let n = m.nwindows();
        let mut saves = 0u32;
        let mut restores = 0u32;
        if let Some(f) = from {
            // Stack-top outs always go to the TCB (charged in the base
            // switch cost, Table 2), dead slots are released; windows stay
            // in situ unless the flush variant is on.
            m.save_outs_to_tcb(f)?;
            if self.flush_on_suspend {
                saves += m.flush_thread(f, TransferReason::Switch)? as u32;
            }
            m.release_dead_slots(f)?;
        }
        let ts = m.thread(to)?;
        if ts.started() && ts.resident() > 0 {
            // Resident resume: the reservation must sit directly above the
            // incoming stack-top (the slot its outs will be restored into).
            let top = ts.top().expect("resident > 0 implies top");
            let desired = top.above(n);
            if m.reserved() != Some(desired) {
                let out = displace(m, desired)?;
                saves += out.saves();
                m.set_reserved(Some(desired))?;
            }
        } else {
            // Windowless: allocate the stack-top at (by default) the old
            // reserved slot — "the window above the suspended thread's" —
            // then push the reservation one above it.
            let started = ts.started();
            let anchor = m.reserved();
            let slot = self.alloc.pick_top_slot(m, anchor, to)?;
            // Free the allocation slot first: if the policy picked a live
            // stack-bottom (LRU), spilling it first guarantees the slot
            // above it is that thread's (new) bottom and safe to displace
            // for the reservation.
            let out = displace(m, slot)?;
            saves += out.saves();
            let new_reserved = slot.above(n);
            if m.reserved() != Some(new_reserved) {
                let out = displace(m, new_reserved)?;
                saves += out.saves();
                m.set_reserved(Some(new_reserved))?;
            }
            if started {
                m.restore_into(to, slot, TransferReason::Switch)?;
                restores += 1;
            } else {
                m.start_initial_frame(to, slot)?;
            }
        }
        m.set_current(Some(to))?;
        m.restore_outs_from_tcb(to)?;
        self.alloc.note_scheduled(to);
        m.record_context_switch(from, SchemeKind::Snp, saves, restores);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;

    fn cpu(n: usize) -> Cpu {
        Cpu::new(n, Box::new(SnpScheme::new())).unwrap()
    }

    #[test]
    fn windows_stay_in_situ_across_switches() {
        let mut cpu = cpu(16);
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.save().unwrap();
        cpu.save().unwrap();
        cpu.switch_to(b).unwrap();
        // a keeps all 3 frames resident.
        assert_eq!(cpu.machine().thread(a).unwrap().resident(), 3);
        assert!(cpu.machine().backing_of(a).unwrap().is_empty());
        cpu.check_invariants().unwrap();
    }

    #[test]
    fn resident_resume_transfers_nothing() {
        let mut cpu = cpu(16);
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.save().unwrap();
        cpu.switch_to(b).unwrap();
        let (saves, restores) =
            (cpu.machine().stats().switch_saves, cpu.machine().stats().switch_restores);
        cpu.switch_to(a).unwrap(); // resume: reservation returns above a's top
        let stats = cpu.machine().stats();
        // Repositioning the reservation over b's... b sits above a, so one
        // spill may occur; with 16 windows and the allocation used here,
        // b's windows are above the reservation, so no transfer happens.
        assert_eq!(stats.switch_restores, restores);
        let _ = saves;
        cpu.check_invariants().unwrap();
    }

    #[test]
    fn outs_survive_via_tcb() {
        let mut cpu = cpu(8);
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.write_out(4, 909).unwrap();
        cpu.switch_to(b).unwrap();
        cpu.write_out(4, 111).unwrap();
        cpu.switch_to(a).unwrap();
        assert_eq!(cpu.read_out(4).unwrap(), 909);
        cpu.switch_to(b).unwrap();
        assert_eq!(cpu.read_out(4).unwrap(), 111);
    }

    #[test]
    fn locals_and_calls_work_across_many_threads() {
        let mut cpu = cpu(8);
        let threads: Vec<_> = (0..4).map(|_| cpu.add_thread()).collect();
        for (i, &t) in threads.iter().enumerate() {
            cpu.switch_to(t).unwrap();
            cpu.write_local(0, i as u64 * 10).unwrap();
            cpu.save().unwrap();
            cpu.write_local(0, i as u64 * 10 + 1).unwrap();
        }
        for (i, &t) in threads.iter().enumerate() {
            cpu.switch_to(t).unwrap();
            assert_eq!(cpu.read_local(0).unwrap(), i as u64 * 10 + 1);
            cpu.restore().unwrap();
            assert_eq!(cpu.read_local(0).unwrap(), i as u64 * 10);
            cpu.check_invariants().unwrap();
        }
    }

    #[test]
    fn underflow_is_inplace_and_never_spills_others() {
        let mut cpu = cpu(6);
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        for _ in 0..6 {
            cpu.save().unwrap(); // deep recursion spills a's own bottoms
        }
        cpu.switch_to(b).unwrap();
        cpu.save().unwrap();
        cpu.switch_to(a).unwrap();
        // The switch itself may reposition the reservation (spilling at
        // most one of b's windows); from here on, a's underflow traps must
        // not move b's windows at all — the heart of the proposed scheme.
        let b_resident = cpu.machine().thread(b).unwrap().resident();
        for _ in 0..6 {
            cpu.restore().unwrap();
        }
        assert_eq!(cpu.machine().thread(b).unwrap().resident(), b_resident);
        assert!(cpu.machine().stats().underflow_traps > 0);
        cpu.check_invariants().unwrap();
    }

    #[test]
    fn flush_variant_writes_windows_out_at_switch() {
        let mut cpu = Cpu::new(16, Box::new(SnpScheme::new().with_flush_on_suspend(true))).unwrap();
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.save().unwrap();
        cpu.switch_to(b).unwrap();
        assert_eq!(cpu.machine().thread(a).unwrap().resident(), 0);
        assert_eq!(cpu.machine().backing_of(a).unwrap().len(), 2);
    }

    #[test]
    fn works_at_two_windows() {
        let mut cpu = cpu(2);
        let a = cpu.add_thread();
        let b = cpu.add_thread();
        cpu.switch_to(a).unwrap();
        cpu.write_local(0, 5).unwrap();
        cpu.save().unwrap();
        cpu.switch_to(b).unwrap();
        cpu.write_local(0, 6).unwrap();
        cpu.switch_to(a).unwrap();
        cpu.restore().unwrap();
        assert_eq!(cpu.read_local(0).unwrap(), 5);
        cpu.switch_to(b).unwrap();
        assert_eq!(cpu.read_local(0).unwrap(), 6);
        cpu.check_invariants().unwrap();
    }
}
