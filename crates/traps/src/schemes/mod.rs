//! The paper's three evaluated window-management schemes (§4.5).

mod ns;
mod snp;
mod sp;

pub use ns::NsScheme;
pub use snp::SnpScheme;
pub use sp::SpScheme;
