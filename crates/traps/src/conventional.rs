//! The conventional (basic) underflow algorithm — paper §2, Figure 4.
//!
//! The caller's window is restored into the reserved window *below* the
//! current one, and the reservation moves one further below, preserving
//! the classic invariant that the reserved window sits directly below the
//! thread's stack-bottom. This is how SunOS-era SPARC systems handle
//! underflow, and it is exactly the behaviour that breaks down when
//! windows are shared among threads (paper §3.1).

use crate::error::SchemeError;
use regwin_machine::{Machine, TransferReason, WindowTrap};

/// Resolves an underflow trap with the conventional algorithm: restores
/// the caller's frame into the trap target (the reserved window) and moves
/// the reservation one window below. The trapped `restore` must be
/// re-executed afterwards ([`Machine::complete_restore`]).
///
/// Charges [`regwin_machine::CostModel::conventional_underflow_cycles`].
///
/// # Errors
///
/// Fails if the trap target is not the reserved window (the conventional
/// algorithm cannot be in use if so), if the slot below the reservation
/// holds live data, or if the thread has no spilled frames (a return past
/// its outermost frame).
pub fn handle_conventional_underflow(m: &mut Machine, trap: WindowTrap) -> Result<(), SchemeError> {
    let target = trap.target();
    if m.reserved() != Some(target) {
        return Err(SchemeError::UnexpectedTrapTarget { target, expected: "the reserved window" });
    }
    let t = m.current_thread().ok_or(SchemeError::NoCurrentThread)?;
    let new_reserved = target.below(m.nwindows());
    if !m.slot_use(new_reserved).is_discardable() {
        return Err(SchemeError::UnexpectedTrapTarget {
            target: new_reserved,
            expected: "a discardable slot below the reservation",
        });
    }
    // Move the reservation first so the old reserved slot becomes free,
    // then refill it with the caller's frame (paper Figure 4: W3 is
    // restored, W4 becomes the new reserved window).
    m.set_reserved(Some(new_reserved))?;
    m.restore_into(t, target, TransferReason::Trap)?;
    m.charge_underflow_conventional();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use regwin_machine::{CycleCategory, ExecOutcome, SlotUse, WindowIndex};

    /// Single thread on a small machine, driven with classic handling.
    #[test]
    fn conventional_roundtrip_preserves_frames() {
        let n = 4;
        let mut m = Machine::new(n).unwrap();
        let t = m.add_thread();
        m.start_initial_frame(t, m.reserved().unwrap().above(n)).unwrap();
        m.set_current(Some(t)).unwrap();
        m.grant_all_free(t).unwrap();
        m.write_local(0, 1).unwrap();
        for depth in 2..=8u64 {
            match m.try_save().unwrap() {
                ExecOutcome::Completed => {}
                ExecOutcome::Trapped(_) => {
                    m.force_reserved_walk().unwrap();
                    m.complete_save().unwrap();
                }
            }
            m.write_local(0, depth).unwrap();
        }
        for depth in (1..=7u64).rev() {
            match m.try_restore().unwrap() {
                ExecOutcome::Completed => {}
                ExecOutcome::Trapped(trap) => {
                    handle_conventional_underflow(&mut m, trap).unwrap();
                    m.complete_restore().unwrap();
                }
            }
            assert_eq!(m.read_local(0).unwrap(), depth);
            m.check_invariants().unwrap();
        }
        assert!(m.cycles().category(CycleCategory::UnderflowTrap) > 0);
    }

    #[test]
    fn rejects_trap_not_at_reserved_window() {
        let n = 8;
        let mut m = Machine::new(n).unwrap();
        let a = m.add_thread();
        let b = m.add_thread();
        m.start_initial_frame(a, WindowIndex::new(2)).unwrap();
        // B directly below A: A's restore target is B's live window, not
        // the reserved window — the conventional handler must refuse.
        m.start_initial_frame(b, WindowIndex::new(3)).unwrap();
        m.set_current(Some(a)).unwrap();
        match m.try_restore().unwrap() {
            ExecOutcome::Trapped(trap) => {
                assert!(matches!(
                    handle_conventional_underflow(&mut m, trap),
                    Err(SchemeError::UnexpectedTrapTarget { .. })
                ));
            }
            other => panic!("expected underflow, got {other:?}"),
        }
    }

    #[test]
    fn reservation_moves_below_after_refill() {
        let n = 4;
        let mut m = Machine::new(n).unwrap();
        let t = m.add_thread();
        m.start_initial_frame(t, m.reserved().unwrap().above(n)).unwrap();
        m.set_current(Some(t)).unwrap();
        m.grant_all_free(t).unwrap();
        // Deep calls to force a spill, then unwind to the trap.
        for _ in 0..5 {
            if let ExecOutcome::Trapped(_) = m.try_save().unwrap() {
                m.force_reserved_walk().unwrap();
                m.complete_save().unwrap();
            }
        }
        loop {
            match m.try_restore().unwrap() {
                ExecOutcome::Completed => continue,
                ExecOutcome::Trapped(trap) => {
                    let old_reserved = m.reserved().unwrap();
                    handle_conventional_underflow(&mut m, trap).unwrap();
                    m.complete_restore().unwrap();
                    assert_eq!(m.reserved(), Some(old_reserved.below(n)));
                    assert_eq!(m.slot_use(old_reserved), SlotUse::Live(t));
                    break;
                }
            }
        }
        m.check_invariants().unwrap();
    }
}
