//! The proposed in-place underflow algorithm — paper §3.2, Figure 8.
//!
//! On underflow, the missing caller's window is restored **into the same
//! physical slot the callee used**: the callee has terminated, so its
//! window is dead, and reusing its slot means *no window ever needs to be
//! spilled on an underflow trap*. That single change removes every
//! obstacle to sharing the window buffer among threads (paper §3.1's
//! problems 1–3 all stem from underflow-time spillage).
//!
//! Before the caller's frame overwrites the slot, the callee's live `in`
//! registers (return values, stack pointer) are copied to the `out`
//! position — physically the `in` registers of the window above, which
//! under the sharing schemes is always the thread's reservation or a dead
//! slot of its own, never another thread's live window.
//!
//! Because the trapped `restore` is not re-executed (the CWP does not
//! move; the current window "virtually goes back"), its add semantics are
//! emulated by the handler (paper §4.3, [`crate::RestoreInstr`]).

use crate::error::SchemeError;
use crate::restore_emul::RestoreInstr;
use regwin_machine::Machine;

/// Which `in` registers the handler copies to the `out` position before
/// the in-place restore (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyMode {
    /// Copy all eight `in` registers — required when the compiler may use
    /// any `restore` feature.
    Full,
    /// Copy only the return-value registers and the stack/frame pointer —
    /// the cheaper variant §3.2 describes as usually sufficient.
    ReturnOnly,
}

impl CopyMode {
    /// Whether all eight registers are copied.
    pub fn is_full(self) -> bool {
        matches!(self, CopyMode::Full)
    }
}

/// Resolves an underflow trap with the proposed algorithm: emulates the
/// trapped `restore` (reading its sources in the callee's window), copies
/// the live `in` registers to the `out` position, restores the caller's
/// frame into the callee's slot, and writes the emulated result into the
/// caller's window. The trapped `restore` is complete on return — do
/// **not** call [`Machine::complete_restore`].
///
/// Charges [`regwin_machine::CostModel::inplace_underflow_cycles`].
///
/// # Errors
///
/// Fails on a return past the thread's outermost frame.
pub fn handle_inplace_underflow(
    m: &mut Machine,
    mode: CopyMode,
    instr: &RestoreInstr,
) -> Result<(), SchemeError> {
    // Emulate the restore's add: sources are read in the callee's window,
    // which is about to be overwritten.
    let result = instr.read_sources(m)?;
    m.inplace_underflow(mode.is_full())?;
    // The destination register lives in the caller's window, which now
    // occupies the same physical slot.
    instr.write_destination(m, result)?;
    m.charge_underflow_inplace(mode.is_full());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restore_emul::{Operand, Reg};
    use regwin_machine::{CycleCategory, ExecOutcome, WindowIndex};

    /// One thread, sharing-style setup: initial frame with slots granted
    /// by hand, deep calls, then in-place returns.
    fn deep_machine(n: usize, depth: usize) -> Machine {
        let mut m = Machine::new(n).unwrap();
        let t = m.add_thread();
        m.start_initial_frame(t, m.reserved().unwrap().above(n)).unwrap();
        m.set_current(Some(t)).unwrap();
        m.grant_all_free(t).unwrap();
        m.write_local(0, 1).unwrap();
        for d in 2..=depth as u64 {
            if let ExecOutcome::Trapped(_) = m.try_save().unwrap() {
                m.force_reserved_walk().unwrap();
                m.complete_save().unwrap();
            }
            m.write_local(0, d).unwrap();
        }
        m
    }

    #[test]
    fn inplace_unwind_preserves_caller_locals() {
        let mut m = deep_machine(4, 8);
        for d in (1..=7u64).rev() {
            match m.try_restore().unwrap() {
                ExecOutcome::Completed => {}
                ExecOutcome::Trapped(_) => {
                    handle_inplace_underflow(&mut m, CopyMode::Full, &RestoreInstr::trivial())
                        .unwrap();
                }
            }
            assert_eq!(m.read_local(0).unwrap(), d);
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn add_semantics_are_emulated_into_callers_window() {
        let mut m = deep_machine(4, 6);
        // Unwind until the next restore traps.
        loop {
            // Set up the callee's "return value" computation each level:
            // restore %l0, 1000, %o0 — caller sees callee's local + 1000.
            m.write_local(3, 7).unwrap();
            let instr = RestoreInstr::new(Reg::L(3), Operand::Imm(1000), Reg::O(0));
            match m.try_restore().unwrap() {
                ExecOutcome::Completed => continue,
                ExecOutcome::Trapped(_) => {
                    handle_inplace_underflow(&mut m, CopyMode::Full, &instr).unwrap();
                    assert_eq!(m.read_out(0).unwrap(), 1007);
                    break;
                }
            }
        }
    }

    #[test]
    fn return_values_visible_with_partial_copy() {
        let mut m = deep_machine(4, 6);
        loop {
            match m.try_restore().unwrap() {
                ExecOutcome::Completed => {}
                ExecOutcome::Trapped(_) => {
                    m.write_in(0, 31337).unwrap(); // %i0 = return value
                    handle_inplace_underflow(
                        &mut m,
                        CopyMode::ReturnOnly,
                        &RestoreInstr::trivial(),
                    )
                    .unwrap();
                    assert_eq!(m.read_out(0).unwrap(), 31337);
                    break;
                }
            }
        }
    }

    #[test]
    fn full_copy_charges_more_than_partial() {
        let mut a = deep_machine(4, 6);
        let mut b = a.clone();
        loop {
            match a.try_restore().unwrap() {
                ExecOutcome::Completed => {
                    assert!(matches!(b.try_restore().unwrap(), ExecOutcome::Completed));
                }
                ExecOutcome::Trapped(_) => {
                    assert!(matches!(b.try_restore().unwrap(), ExecOutcome::Trapped(_)));
                    let base_a = a.cycles().category(CycleCategory::UnderflowTrap);
                    handle_inplace_underflow(&mut a, CopyMode::Full, &RestoreInstr::trivial())
                        .unwrap();
                    handle_inplace_underflow(
                        &mut b,
                        CopyMode::ReturnOnly,
                        &RestoreInstr::trivial(),
                    )
                    .unwrap();
                    let cost_a = a.cycles().category(CycleCategory::UnderflowTrap) - base_a;
                    let cost_b = b.cycles().category(CycleCategory::UnderflowTrap);
                    assert!(cost_a > cost_b);
                    break;
                }
            }
        }
    }

    #[test]
    fn underflow_past_outermost_frame_errors() {
        let mut m = Machine::new(8).unwrap();
        let t = m.add_thread();
        m.start_initial_frame(t, WindowIndex::new(3)).unwrap();
        m.set_current(Some(t)).unwrap();
        match m.try_restore().unwrap() {
            ExecOutcome::Trapped(_) => {
                assert!(handle_inplace_underflow(&mut m, CopyMode::Full, &RestoreInstr::trivial())
                    .is_err());
            }
            other => panic!("expected underflow, got {other:?}"),
        }
    }
}
