//! Property-based differential testing of the window-management schemes.
//!
//! A shadow oracle models each thread's call stack as a plain `Vec` of
//! marker values. Random traces of calls, returns and context switches
//! are executed on the simulated CPU under every scheme and window count,
//! and every observable register value (argument `in`s, return-value
//! `out`s, caller `local`s) must match the oracle exactly. This is the
//! paper's central correctness claim — that window sharing with in-place
//! underflow is *semantically invisible* to the running threads — turned
//! into an executable property.

use proptest::prelude::*;
use regwin_traps::{build_scheme, Cpu, SchemeKind};

#[derive(Debug, Clone)]
enum Op {
    /// Switch to thread i (mod nthreads) and call a procedure.
    Call(usize),
    /// Switch to thread i and return from a procedure (skipped at depth 1).
    Return(usize),
    /// Switch to thread i and just look around.
    Inspect(usize),
}

fn op_strategy(nthreads: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nthreads).prop_map(Op::Call),
        (0..nthreads).prop_map(Op::Return),
        (0..nthreads).prop_map(Op::Inspect),
    ]
}

/// One thread's shadow state: the marker stored in each live frame's
/// `local0`, plus the `out0` argument passed at each call.
#[derive(Debug, Default, Clone)]
struct ShadowThread {
    locals: Vec<u64>,
}

fn run_trace(kind: SchemeKind, nwindows: usize, nthreads: usize, ops: &[Op]) {
    let mut cpu = match Cpu::new(nwindows, build_scheme(kind)) {
        Ok(cpu) => cpu,
        Err(_) => return, // scheme needs more windows; property vacuous
    };
    let threads: Vec<_> = (0..nthreads).map(|_| cpu.add_thread()).collect();
    let mut shadow: Vec<ShadowThread> = vec![ShadowThread::default(); nthreads];
    let mut counter = 1000u64;

    // Start every thread with a marked initial frame.
    for (i, &t) in threads.iter().enumerate() {
        cpu.switch_to(t).unwrap();
        counter += 1;
        cpu.write_local(0, counter).unwrap();
        shadow[i].locals.push(counter);
    }

    for op in ops {
        match *op {
            Op::Call(i) => {
                cpu.switch_to(threads[i]).unwrap();
                counter += 1;
                let arg = counter;
                cpu.write_out(0, arg).unwrap();
                cpu.save().unwrap();
                // The argument must have crossed the window overlap.
                assert_eq!(cpu.read_in(0).unwrap(), arg, "{kind} arg passing");
                counter += 1;
                cpu.write_local(0, counter).unwrap();
                shadow[i].locals.push(counter);
            }
            Op::Return(i) => {
                if shadow[i].locals.len() <= 1 {
                    continue; // never return past the outermost frame
                }
                cpu.switch_to(threads[i]).unwrap();
                counter += 1;
                let ret = counter;
                cpu.write_in(0, ret).unwrap();
                cpu.restore().unwrap();
                shadow[i].locals.pop();
                assert_eq!(cpu.read_out(0).unwrap(), ret, "{kind} return value");
                assert_eq!(
                    cpu.read_local(0).unwrap(),
                    *shadow[i].locals.last().unwrap(),
                    "{kind} caller locals after return"
                );
            }
            Op::Inspect(i) => {
                cpu.switch_to(threads[i]).unwrap();
                assert_eq!(
                    cpu.read_local(0).unwrap(),
                    *shadow[i].locals.last().unwrap(),
                    "{kind} locals after resume"
                );
            }
        }
        cpu.check_invariants().unwrap();
    }

    // Unwind every thread completely; every frame must reappear.
    for (i, &t) in threads.iter().enumerate() {
        cpu.switch_to(t).unwrap();
        while shadow[i].locals.len() > 1 {
            cpu.restore().unwrap();
            shadow[i].locals.pop();
            assert_eq!(
                cpu.read_local(0).unwrap(),
                *shadow[i].locals.last().unwrap(),
                "{kind} final unwind"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ns_matches_oracle(
        nwindows in 3usize..12,
        ops in prop::collection::vec(op_strategy(4), 1..120),
    ) {
        run_trace(SchemeKind::Ns, nwindows, 4, &ops);
    }

    #[test]
    fn snp_matches_oracle(
        nwindows in 2usize..12,
        ops in prop::collection::vec(op_strategy(4), 1..120),
    ) {
        run_trace(SchemeKind::Snp, nwindows, 4, &ops);
    }

    #[test]
    fn sp_matches_oracle(
        nwindows in 2usize..12,
        ops in prop::collection::vec(op_strategy(4), 1..120),
    ) {
        run_trace(SchemeKind::Sp, nwindows, 4, &ops);
    }

    /// All three schemes must count the same saves/restores for the same
    /// trace (only traps, transfers and cycles may differ).
    #[test]
    fn schemes_agree_on_instruction_counts(
        nwindows in 3usize..10,
        ops in prop::collection::vec(op_strategy(3), 1..80),
    ) {
        let mut counts = Vec::new();
        for kind in SchemeKind::ALL {
            let mut cpu = Cpu::new(nwindows, build_scheme(kind)).unwrap();
            let threads: Vec<_> = (0..3).map(|_| cpu.add_thread()).collect();
            let mut depth = [1usize; 3];
            for &t in &threads {
                cpu.switch_to(t).unwrap();
            }
            for op in &ops {
                match *op {
                    Op::Call(i) => {
                        cpu.switch_to(threads[i]).unwrap();
                        cpu.save().unwrap();
                        depth[i] += 1;
                    }
                    Op::Return(i) => {
                        if depth[i] > 1 {
                            cpu.switch_to(threads[i]).unwrap();
                            cpu.restore().unwrap();
                            depth[i] -= 1;
                        }
                    }
                    Op::Inspect(i) => cpu.switch_to(threads[i]).unwrap(),
                }
            }
            let s = cpu.stats();
            counts.push((s.saves_executed, s.restores_executed));
        }
        prop_assert_eq!(counts[0], counts[1]);
        prop_assert_eq!(counts[0], counts[2]);
    }
}
