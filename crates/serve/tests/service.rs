//! End-to-end daemon tests: a server thread on a temp socket, real
//! `ServeClient` sessions, and byte-identity against the in-process
//! path — the differential oracle the whole service hangs on.

use regwin_core::{Behavior, Concurrency, Granularity, MatrixSpec};
use regwin_machine::{SchemeKind, TimingKind};
use regwin_rt::SchedulingPolicy;
use regwin_serve::{ClientError, ServeClient, Server, ServerConfig};
use regwin_spell::CorpusSpec;
use regwin_sweep::{SweepConfig, SweepEngine};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn spec_a() -> MatrixSpec {
    MatrixSpec {
        corpus: CorpusSpec::small(),
        behaviors: vec![Behavior::new(Concurrency::High, Granularity::Medium)],
        schemes: vec![SchemeKind::Ns, SchemeKind::Sp],
        windows: vec![4, 8],
        policy: SchedulingPolicy::Fifo,
        timing: TimingKind::S20,
    }
}

/// Overlaps `spec_a` on (NS, 8) and (SP, 8), adds (SNP, 8) and w=12.
fn spec_b() -> MatrixSpec {
    MatrixSpec {
        corpus: CorpusSpec::small(),
        behaviors: vec![Behavior::new(Concurrency::High, Granularity::Medium)],
        schemes: vec![SchemeKind::Ns, SchemeKind::Snp, SchemeKind::Sp],
        windows: vec![8, 12],
        policy: SchedulingPolicy::Fifo,
        timing: TimingKind::S20,
    }
}

struct TestDaemon {
    dir: PathBuf,
    socket: PathBuf,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestDaemon {
    fn start(tag: &str, max_clients: usize) -> Self {
        let dir = std::env::temp_dir().join(format!("regwin-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self::restart(dir, max_clients)
    }

    /// Starts (or restarts) a daemon over an existing state directory,
    /// reusing its cache and journals.
    fn restart(dir: PathBuf, max_clients: usize) -> Self {
        let socket = dir.join("daemon.sock");
        let shutdown = Arc::new(AtomicBool::new(false));
        let config = ServerConfig {
            socket: socket.clone(),
            cache_dir: Some(dir.join("cache")),
            journal_dir: Some(dir.join("journals")),
            workers: 2,
            max_clients,
        };
        std::fs::create_dir_all(dir.join("journals")).unwrap();
        let server = Server::bind(config, Arc::clone(&shutdown)).expect("daemon binds");
        let handle = std::thread::spawn(move || server.run());
        TestDaemon { dir, socket, shutdown, handle: Some(handle) }
    }

    fn connect(&self, session: &str) -> Result<ServeClient, ClientError> {
        // The daemon thread may still be between bind and accept; the
        // listener exists once bind returned, so connect just works.
        ServeClient::connect(&self.socket, session)
    }

    /// Flips the shutdown flag and joins the daemon thread.
    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            h.join().unwrap().expect("daemon exits cleanly");
        }
    }

    /// Stops the daemon and deletes its state directory. Call at the
    /// end of a test; plain `drop` keeps the directory so a restarted
    /// daemon can reuse it.
    fn cleanup(mut self) {
        self.stop();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl Drop for TestDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The in-process ground truth for a session running `specs` in order:
/// a fresh deterministic engine, no cache.
fn reference(specs: &[MatrixSpec]) -> (Vec<Vec<regwin_core::RunRecord>>, String) {
    let engine = SweepEngine::with_config(
        SweepConfig::builder().deterministic_artifact(true).workers(2).build().unwrap(),
    );
    let records = specs.iter().map(|s| engine.run_matrix(s).expect("reference runs")).collect();
    (records, engine.artifact_value().to_json())
}

fn assert_same_records(got: &[regwin_core::RunRecord], want: &[regwin_core::RunRecord]) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.behavior, w.behavior);
        assert_eq!(g.scheme, w.scheme);
        assert_eq!(g.policy, w.policy);
        assert_eq!(g.nwindows, w.nwindows);
        assert_eq!(g.report, w.report, "remote records must be bit-equal");
    }
}

#[test]
fn a_thin_client_matches_the_in_process_path_byte_for_byte() {
    let daemon = TestDaemon::start("basic", 4);
    let (want_records, want_artifact) = reference(&[spec_a()]);

    let mut client = daemon.connect("basic-session").expect("client connects");
    assert_eq!(client.session_id().len(), 16);
    let records = client.run_matrix(&spec_a()).expect("remote sweep runs");
    assert_same_records(&records, &want_records[0]);
    let summary = client.summary();
    assert_eq!(summary.jobs, spec_a().len());
    assert_eq!(summary.quarantined, 0);
    assert!(client.quarantine().is_empty());
    let artifact = client.artifact().expect("artifact fetch");
    assert_eq!(artifact, want_artifact, "thin-client artifact must be byte-identical");
    client.bye();
    daemon.cleanup();
}

#[test]
fn two_concurrent_clients_with_overlapping_sweeps_both_match() {
    let daemon = TestDaemon::start("pair", 4);
    let (want_a, artifact_a) = reference(&[spec_a()]);
    let (want_b, artifact_b) = reference(&[spec_b()]);

    std::thread::scope(|scope| {
        let socket_a: &Path = &daemon.socket;
        let socket_b: &Path = &daemon.socket;
        let a = scope.spawn(move || {
            let mut client = ServeClient::connect(socket_a, "client-a").expect("a connects");
            let records = client.run_matrix(&spec_a()).expect("a sweeps");
            let artifact = client.artifact().expect("a artifact");
            client.bye();
            (records, artifact)
        });
        let b = scope.spawn(move || {
            let mut client = ServeClient::connect(socket_b, "client-b").expect("b connects");
            let records = client.run_matrix(&spec_b()).expect("b sweeps");
            let artifact = client.artifact().expect("b artifact");
            client.bye();
            (records, artifact)
        });
        let (records, artifact) = a.join().unwrap();
        assert_same_records(&records, &want_a[0]);
        assert_eq!(artifact, artifact_a, "client a artifact must be byte-identical");
        let (records, artifact) = b.join().unwrap();
        assert_same_records(&records, &want_b[0]);
        assert_eq!(artifact, artifact_b, "client b artifact must be byte-identical");
    });
    daemon.cleanup();
}

#[test]
fn a_session_resumes_byte_identically_across_a_daemon_restart() {
    let mut daemon = TestDaemon::start("resume", 4);
    let (_, want_artifact) = reference(&[spec_b()]);

    // First daemon lifetime: run the sweep and stop (the journal keeps
    // every completed job).
    let mut client = daemon.connect("resume-session").expect("client connects");
    client.run_matrix(&spec_b()).expect("first run");
    let first_artifact = client.artifact().expect("first artifact");
    assert_eq!(first_artifact, want_artifact);
    client.bye();
    daemon.stop();
    let dir = daemon.dir.clone();
    drop(std::mem::replace(&mut daemon, TestDaemon::restart(dir.clone(), 4)));

    // Second lifetime, same session string: the journal replays, the
    // sweep is pure replay, and the artifact is byte-identical.
    let mut client = daemon.connect("resume-session").expect("client reconnects");
    let records = client.run_matrix(&spec_b()).expect("resumed run");
    assert_eq!(records.len(), spec_b().len());
    let artifact = client.artifact().expect("resumed artifact");
    assert_eq!(artifact, want_artifact, "restart + resume must be byte-identical");
    client.bye();
    daemon.cleanup();
}

#[test]
fn a_draining_daemon_cuts_sweeps_short_and_a_restart_completes_them() {
    let mut daemon = TestDaemon::start("drain", 4);
    let (_, want_artifact) = reference(&[spec_b()]);

    let mut client = daemon.connect("drain-session").expect("client connects");
    // Trip the drain before the sweep: depending on timing the session
    // either errors the sweep (gate closed / draining) or the
    // connection drops — both are acceptable shutdown behaviours, and
    // either way nothing wrong lands in the journal.
    daemon.shutdown.store(true, Ordering::SeqCst);
    // Either the sweep slips in whole before the gate closes (legal —
    // everything it finished is journaled like any other run), or it is
    // cut short with a draining error / dropped connection.
    if let Ok(records) = client.run_matrix(&spec_b()) {
        assert_eq!(records.len(), spec_b().len());
    }
    daemon.stop();

    // Restart: the same session completes the sweep and the artifact is
    // byte-identical to an undisturbed run.
    let dir = daemon.dir.clone();
    drop(std::mem::replace(&mut daemon, TestDaemon::restart(dir, 4)));
    let mut client = daemon.connect("drain-session").expect("client reconnects");
    client.run_matrix(&spec_b()).expect("post-restart run");
    let artifact = client.artifact().expect("post-restart artifact");
    assert_eq!(artifact, want_artifact, "drain must never corrupt the journaled session");
    client.bye();
    daemon.cleanup();
}

#[test]
fn the_client_limit_turns_extra_connections_away_with_busy() {
    let daemon = TestDaemon::start("busy", 1);
    let client = daemon.connect("first").expect("first client connects");
    let second = daemon.connect("second");
    match second {
        Err(ClientError::Busy(detail)) => assert!(detail.contains("limit")),
        other => panic!("expected busy, got {other:?}"),
    }
    client.bye();
    daemon.cleanup();
}
