//! The newline-delimited JSON wire protocol.
//!
//! Every frame is one JSON object on one line, with a `"type"` field
//! naming the frame. The encoding reuses the deterministic
//! [`regwin_sweep::json`] writer, so frame bytes are stable across
//! machines — which is what lets the differential oracle `cmp` a thin
//! client's artifact against the in-process path.
//!
//! Client → server frames:
//!
//! | type | fields | meaning |
//! |------|--------|---------|
//! | `hello` | `proto`, `session` | open a session; `session` is a stable client-chosen string |
//! | `sweep` | `spec` | run one matrix through the session's engine |
//! | `artifact` | — | request the session's `BENCH_sweep.json` bytes |
//! | `shutdown` | — | ask the daemon to drain and exit |
//! | `bye` | — | close the session |
//!
//! Server → client frames:
//!
//! | type | fields | meaning |
//! |------|--------|---------|
//! | `ready` | `proto`, `session_id` | session accepted |
//! | `busy` | `detail` | daemon at `--max-clients`; try again later |
//! | `event` | `data` | one streamed job-progress event (a [`regwin_obs::StreamProbe`] line) |
//! | `records` | `records`, `summary`, `quarantine` | a sweep finished |
//! | `sweep_error` | `detail`, `draining` | a sweep failed (or was cut short by a drain) |
//! | `artifact` | `data` | the artifact bytes (exactly what the engine would write) |
//! | `ok` | — | acknowledges `shutdown` |

use regwin_core::{Behavior, Concurrency, Granularity, MatrixSpec, RunRecord};
use regwin_machine::{SchemeKind, TimingKind};
use regwin_rt::SchedulingPolicy;
use regwin_spell::CorpusSpec;
use regwin_sweep::json::{obj, parse, Value};
use regwin_sweep::serial::{report_from_value, report_to_value};
use regwin_sweep::{QuarantineRecord, SweepSummary};
use std::fmt;
use std::io::{BufRead, Write};

/// The protocol revision spoken by this crate. A `hello` carrying a
/// different revision is rejected, so mismatched client/daemon builds
/// fail loudly instead of mis-decoding each other's frames.
pub const PROTO_VERSION: u64 = 1;

/// A malformed or unexpected frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn bad(detail: impl Into<String>) -> ProtoError {
    ProtoError(detail.into())
}

fn need<'v>(v: &'v Value, key: &str) -> Result<&'v Value, ProtoError> {
    v.get(key).ok_or_else(|| bad(format!("missing field '{key}'")))
}

fn need_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, ProtoError> {
    need(v, key)?.as_str().ok_or_else(|| bad(format!("field '{key}' not a string")))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, ProtoError> {
    need(v, key)?.as_u64().ok_or_else(|| bad(format!("field '{key}' not an integer")))
}

/// Writes one frame as a single line. Flushes, so the peer sees the
/// frame immediately.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_frame(w: &mut impl Write, frame: &Value) -> std::io::Result<()> {
    let mut line = frame.to_json();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` at a clean end of stream.
///
/// # Errors
///
/// I/O errors propagate; unparseable lines surface as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl BufRead) -> std::io::Result<Option<Value>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    parse(line.trim_end()).map(Some).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad frame: {e}"))
    })
}

/// A timeout-tolerant frame reader.
///
/// Unlike [`read_frame`] over a `BufRead`, a `FrameReader` keeps
/// partially received bytes across calls: when the underlying stream
/// has a read timeout (the daemon polls its shutdown flag between
/// reads), a `WouldBlock`/`TimedOut` error surfaces to the caller
/// *without* discarding a half-received frame.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: std::io::Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader { inner, buf: Vec::new() }
    }

    /// The next frame; `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Timeouts (`WouldBlock`/`TimedOut`) propagate with the partial
    /// frame retained — call again to continue. Unparseable lines
    /// surface as [`std::io::ErrorKind::InvalidData`].
    pub fn next_frame(&mut self) -> std::io::Result<Option<Value>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line);
                return parse(text.trim_end()).map(Some).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad frame: {e}"))
                });
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk)? {
                0 => return Ok(None),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }
}

/// The `"type"` of a frame.
///
/// # Errors
///
/// Fails if the field is missing or not a string.
pub fn frame_type(frame: &Value) -> Result<&str, ProtoError> {
    need_str(frame, "type")
}

/// Encodes a [`MatrixSpec`] for a `sweep` frame.
pub fn spec_to_value(spec: &MatrixSpec) -> Value {
    obj(vec![
        (
            "corpus",
            obj(vec![
                ("doc_bytes", Value::Int(spec.corpus.doc_bytes as u64)),
                ("dict_bytes", Value::Int(spec.corpus.dict_bytes as u64)),
                ("seed", Value::Int(spec.corpus.seed)),
            ]),
        ),
        (
            "behaviors",
            Value::Arr(spec.behaviors.iter().map(|b| Value::Str(b.to_string())).collect()),
        ),
        ("schemes", Value::Arr(spec.schemes.iter().map(|s| Value::Str(s.name().into())).collect())),
        ("windows", Value::Arr(spec.windows.iter().map(|&w| Value::Int(w as u64)).collect())),
        ("policy", Value::Str(spec.policy.name().into())),
        ("timing", Value::Str(spec.timing.name().into())),
    ])
}

/// Parses a behaviour from its `Display` form, e.g. `"high/fine"`.
///
/// # Errors
///
/// Fails on an unknown concurrency or granularity name.
pub fn behavior_from_name(name: &str) -> Result<Behavior, ProtoError> {
    let (conc, gran) =
        name.split_once('/').ok_or_else(|| bad(format!("behavior '{name}' is not 'conc/gran'")))?;
    let concurrency = Concurrency::ALL
        .into_iter()
        .find(|c| c.to_string() == conc)
        .ok_or_else(|| bad(format!("unknown concurrency '{conc}'")))?;
    let granularity = Granularity::ALL
        .into_iter()
        .find(|g| g.to_string() == gran)
        .ok_or_else(|| bad(format!("unknown granularity '{gran}'")))?;
    Ok(Behavior::new(concurrency, granularity))
}

fn scheme_from_name(name: &str) -> Result<SchemeKind, ProtoError> {
    SchemeKind::ALL
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| bad(format!("unknown scheme '{name}'")))
}

/// Decodes the `spec` of a `sweep` frame.
///
/// # Errors
///
/// Fails on missing or mistyped fields.
pub fn spec_from_value(v: &Value) -> Result<MatrixSpec, ProtoError> {
    let corpus_v = need(v, "corpus")?;
    let corpus = CorpusSpec {
        doc_bytes: need_u64(corpus_v, "doc_bytes")? as usize,
        dict_bytes: need_u64(corpus_v, "dict_bytes")? as usize,
        seed: need_u64(corpus_v, "seed")?,
    };
    let behaviors = need(v, "behaviors")?
        .as_arr()
        .ok_or_else(|| bad("'behaviors' not an array"))?
        .iter()
        .map(|b| behavior_from_name(b.as_str().ok_or_else(|| bad("behavior not a string"))?))
        .collect::<Result<Vec<_>, _>>()?;
    let schemes = need(v, "schemes")?
        .as_arr()
        .ok_or_else(|| bad("'schemes' not an array"))?
        .iter()
        .map(|s| scheme_from_name(s.as_str().ok_or_else(|| bad("scheme not a string"))?))
        .collect::<Result<Vec<_>, _>>()?;
    let windows = need(v, "windows")?
        .as_arr()
        .ok_or_else(|| bad("'windows' not an array"))?
        .iter()
        .map(|w| w.as_u64().map(|w| w as usize).ok_or_else(|| bad("window not an integer")))
        .collect::<Result<Vec<_>, _>>()?;
    let policy_name = need_str(v, "policy")?;
    let policy = SchedulingPolicy::parse(policy_name)
        .ok_or_else(|| bad(format!("unknown policy '{policy_name}'")))?;
    let timing_name = need_str(v, "timing")?;
    let timing = TimingKind::parse(timing_name)
        .ok_or_else(|| bad(format!("unknown timing backend '{timing_name}'")))?;
    Ok(MatrixSpec { corpus, behaviors, schemes, windows, policy, timing })
}

/// Encodes run records for a `records` frame (the same per-record shape
/// as [`regwin_sweep::records_to_json`]).
pub fn records_to_value(records: &[RunRecord]) -> Value {
    Value::Arr(
        records
            .iter()
            .map(|r| {
                obj(vec![
                    ("behavior", Value::Str(r.behavior.to_string())),
                    ("scheme", Value::Str(r.scheme.name().into())),
                    ("policy", Value::Str(r.policy.name().into())),
                    ("nwindows", Value::Int(r.nwindows as u64)),
                    ("report", report_to_value(&r.report)),
                ])
            })
            .collect(),
    )
}

/// Decodes the records of a `records` frame.
///
/// # Errors
///
/// Fails on missing or mistyped fields.
pub fn records_from_value(v: &Value) -> Result<Vec<RunRecord>, ProtoError> {
    v.as_arr()
        .ok_or_else(|| bad("'records' not an array"))?
        .iter()
        .map(|r| {
            let behavior = behavior_from_name(need_str(r, "behavior")?)?;
            let scheme = scheme_from_name(need_str(r, "scheme")?)?;
            let policy_name = need_str(r, "policy")?;
            let policy = SchedulingPolicy::parse(policy_name)
                .ok_or_else(|| bad(format!("unknown policy '{policy_name}'")))?;
            let nwindows = need_u64(r, "nwindows")? as usize;
            let report = report_from_value(need(r, "report")?)
                .map_err(|e| bad(format!("bad report: {e}")))?;
            Ok(RunRecord { behavior, scheme, policy, nwindows, report })
        })
        .collect()
}

/// Encodes a sweep summary for a `records` frame.
pub fn summary_to_value(s: &SweepSummary) -> Value {
    obj(vec![
        ("jobs", Value::Int(s.jobs as u64)),
        ("cache_hits", Value::Int(s.cache_hits as u64)),
        ("cache_misses", Value::Int(s.cache_misses as u64)),
        ("quarantined", Value::Int(s.quarantined as u64)),
    ])
}

/// Decodes a `records` frame's summary.
///
/// # Errors
///
/// Fails on missing or mistyped fields.
pub fn summary_from_value(v: &Value) -> Result<SweepSummary, ProtoError> {
    Ok(SweepSummary {
        jobs: need_u64(v, "jobs")? as usize,
        cache_hits: need_u64(v, "cache_hits")? as usize,
        cache_misses: need_u64(v, "cache_misses")? as usize,
        quarantined: need_u64(v, "quarantined")? as usize,
    })
}

/// Encodes the quarantine list for a `records` frame.
pub fn quarantine_to_value(quarantine: &[QuarantineRecord]) -> Value {
    Value::Arr(
        quarantine
            .iter()
            .map(|q| {
                obj(vec![
                    ("id", Value::Str(q.id.clone())),
                    ("key", Value::Str(q.key.clone())),
                    ("label", Value::Str(q.label.clone())),
                    ("reason", Value::Str(q.reason.into())),
                    ("attempts", Value::Int(u64::from(q.attempts))),
                    ("detail", Value::Str(q.detail.clone())),
                    ("repro", Value::Str(q.repro.clone())),
                ])
            })
            .collect(),
    )
}

/// Decodes a `records` frame's quarantine list.
///
/// The `reason` field round-trips through the three static reason
/// strings the engine emits; anything else maps to `"error"`.
///
/// # Errors
///
/// Fails on missing or mistyped fields.
pub fn quarantine_from_value(v: &Value) -> Result<Vec<QuarantineRecord>, ProtoError> {
    v.as_arr()
        .ok_or_else(|| bad("'quarantine' not an array"))?
        .iter()
        .map(|q| {
            Ok(QuarantineRecord {
                id: need_str(q, "id")?.to_string(),
                key: need_str(q, "key")?.to_string(),
                label: need_str(q, "label")?.to_string(),
                reason: match need_str(q, "reason")? {
                    "panic" => "panic",
                    "timeout" => "timeout",
                    _ => "error",
                },
                attempts: need_u64(q, "attempts")? as u32,
                detail: need_str(q, "detail")?.to_string(),
                repro: need_str(q, "repro")?.to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MatrixSpec {
        MatrixSpec {
            corpus: CorpusSpec::small(),
            behaviors: vec![
                Behavior::new(Concurrency::High, Granularity::Coarse),
                Behavior::new(Concurrency::Low, Granularity::Fine),
            ],
            schemes: vec![SchemeKind::Ns, SchemeKind::Sp],
            windows: vec![4, 8, 16],
            policy: SchedulingPolicy::WorkingSet,
            timing: TimingKind::Pipeline,
        }
    }

    #[test]
    fn specs_round_trip_through_the_wire_encoding() {
        let s = spec();
        let v = spec_to_value(&s);
        let back = spec_from_value(&parse(&v.to_json()).unwrap()).unwrap();
        assert_eq!(back.corpus, s.corpus);
        assert_eq!(back.behaviors, s.behaviors);
        assert_eq!(back.schemes, s.schemes);
        assert_eq!(back.windows, s.windows);
        assert_eq!(back.policy, s.policy);
        assert_eq!(back.timing, s.timing);
    }

    #[test]
    fn every_behavior_name_parses_back() {
        for b in Behavior::ALL {
            assert_eq!(behavior_from_name(&b.to_string()).unwrap(), b);
        }
        assert!(behavior_from_name("high").is_err());
        assert!(behavior_from_name("high/blurry").is_err());
    }

    #[test]
    fn records_round_trip_through_the_wire_encoding() {
        let mut s = spec();
        s.windows = vec![4];
        let records = regwin_core::run_matrix(&s, |_, _| {}).expect("matrix runs");
        let v = records_to_value(&records);
        let back = records_from_value(&parse(&v.to_json()).unwrap()).unwrap();
        assert_eq!(back.len(), records.len());
        for (a, b) in back.iter().zip(&records) {
            assert_eq!(a.behavior, b.behavior);
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.nwindows, b.nwindows);
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn frames_survive_a_buffered_pipe() {
        let mut buf = Vec::new();
        let f1 = obj(vec![("type", Value::Str("hello".into())), ("proto", Value::Int(1))]);
        let f2 = obj(vec![("type", Value::Str("bye".into()))]);
        write_frame(&mut buf, &f1).unwrap();
        write_frame(&mut buf, &f2).unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        let g1 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(frame_type(&g1).unwrap(), "hello");
        assert_eq!(g1.get("proto").and_then(Value::as_u64), Some(1));
        let g2 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(frame_type(&g2).unwrap(), "bye");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn summaries_and_quarantines_round_trip() {
        let s = SweepSummary { jobs: 9, cache_hits: 4, cache_misses: 5, quarantined: 1 };
        let back = summary_from_value(&summary_to_value(&s)).unwrap();
        assert_eq!(back, s);
        let q = vec![QuarantineRecord {
            id: "deadbeef".into(),
            key: "v6|exp=matrix".into(),
            label: "SP FIFO w=8".into(),
            reason: "timeout",
            attempts: 3,
            detail: "wedged".into(),
            repro: "v6|... --fault-seed 1".into(),
        }];
        let back = quarantine_from_value(&quarantine_to_value(&q)).unwrap();
        assert_eq!(back, q);
    }
}
