//! The sweep daemon binary.
//!
//! ```text
//! regwin-served --socket <path> [--cache-dir <dir> | --no-cache]
//!               [--journal-dir <dir>] [--workers <n>] [--max-clients <n>]
//! ```
//!
//! Listens on a Unix-domain socket and serves sweep sessions (see the
//! `regwin-serve` crate docs). SIGTERM or SIGINT triggers a graceful
//! drain: in-flight jobs finish and journal, queued jobs are skipped,
//! the socket file is removed, and the process exits 0 — restart the
//! daemon and re-run the clients to resume from the journals.

use regwin_serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The flag SIGTERM/SIGINT flip; polled by the accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGTERM and SIGINT via the C `signal`
/// symbol, avoiding an external crate for one syscall.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: regwin-served --socket <path> [--cache-dir <dir> | --no-cache] \
         [--journal-dir <dir>] [--workers <n>] [--max-clients <n>]"
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}

fn main() {
    let mut config = ServerConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                config.socket =
                    PathBuf::from(it.next().unwrap_or_else(|| usage("--socket needs a path")));
            }
            "--cache-dir" => {
                config.cache_dir = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| usage("--cache-dir needs a dir")),
                ));
            }
            "--no-cache" => config.cache_dir = None,
            "--journal-dir" => {
                config.journal_dir = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| usage("--journal-dir needs a dir")),
                ));
            }
            "--workers" => {
                config.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a thread count"));
            }
            "--max-clients" => {
                config.max_clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--max-clients needs a count"));
                if config.max_clients == 0 {
                    usage("--max-clients must be at least 1");
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if let Some(dir) = &config.journal_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create journal dir {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    install_signal_handlers();
    let shutdown = Arc::new(AtomicBool::new(false));
    // Bridge the signal-handler static into the server's shared flag.
    let server = match Server::bind(config, Arc::clone(&shutdown)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("regwin-served: listening on {}", server.socket().display());
    let relay = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            while !SHUTDOWN.load(Ordering::SeqCst) && !shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            shutdown.store(true, Ordering::SeqCst);
        })
    };
    match server.run() {
        Ok(()) => {
            eprintln!("regwin-served: drained, exiting");
            let _ = relay.join();
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
