//! The thin client: speak the daemon protocol on behalf of a repro
//! binary.
//!
//! A [`ServeClient`] replaces an in-process [`regwin_sweep::SweepEngine`]
//! for the sweep half of a repro run: it ships each [`MatrixSpec`] to
//! the daemon, relays streamed job-progress events to stderr, and
//! returns the decoded run records — which are bit-equal to what the
//! in-process engine would produce, so everything computed from them
//! (tables, figures, artifacts) is byte-identical.

use crate::protocol::{
    frame_type, quarantine_from_value, records_from_value, spec_to_value, summary_from_value,
    write_frame, FrameReader, PROTO_VERSION,
};
use regwin_core::{MatrixSpec, RunRecord};
use regwin_sweep::json::{obj, Value};
use regwin_sweep::{QuarantineRecord, SweepSummary};
use std::fmt;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket died or the daemon closed it mid-exchange.
    Io(std::io::Error),
    /// The daemon sent something this client cannot decode.
    Protocol(String),
    /// The daemon is at its client limit.
    Busy(String),
    /// The daemon reported a sweep failure. `draining` is set when the
    /// failure is a graceful shutdown cutting the sweep short (the
    /// daemon journaled what finished; reconnect after restart to
    /// resume).
    Sweep {
        /// The daemon's error message.
        detail: String,
        /// Whether the daemon was draining for shutdown.
        draining: bool,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "server connection failed: {e}"),
            ClientError::Protocol(detail) => write!(f, "server protocol error: {detail}"),
            ClientError::Busy(detail) => write!(f, "server busy: {detail}"),
            ClientError::Sweep { detail, .. } => write!(f, "server sweep failed: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected session with a sweep daemon.
#[derive(Debug)]
pub struct ServeClient {
    reader: FrameReader<UnixStream>,
    writer: UnixStream,
    session_id: String,
    summary: SweepSummary,
    quarantine: Vec<QuarantineRecord>,
}

impl ServeClient {
    /// Connects to the daemon at `socket` and opens a session.
    ///
    /// `session` is a stable client-chosen string (for the repro
    /// binaries: the binary name plus its sweep-defining flags); the
    /// daemon hashes it into the session id that names the session's
    /// journal, so re-running the same invocation after a daemon
    /// restart resumes its journal.
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] when the daemon is at its client limit,
    /// [`ClientError::Io`]/[`ClientError::Protocol`] on a dead or
    /// incompatible daemon.
    pub fn connect(socket: &Path, session: &str) -> Result<Self, ClientError> {
        let stream = UnixStream::connect(socket)?;
        let writer = stream.try_clone()?;
        let mut client = ServeClient {
            reader: FrameReader::new(stream),
            writer,
            session_id: String::new(),
            summary: SweepSummary::default(),
            quarantine: Vec::new(),
        };
        write_frame(
            &mut client.writer,
            &obj(vec![
                ("type", Value::Str("hello".into())),
                ("proto", Value::Int(PROTO_VERSION)),
                ("session", Value::Str(session.to_string())),
            ]),
        )?;
        let frame = client.expect_frame()?;
        match frame_type(&frame).unwrap_or("?") {
            "ready" => {
                client.session_id =
                    frame.get("session_id").and_then(Value::as_str).unwrap_or("").to_string();
                Ok(client)
            }
            "busy" => Err(ClientError::Busy(
                frame.get("detail").and_then(Value::as_str).unwrap_or("no detail").to_string(),
            )),
            other => Err(ClientError::Protocol(format!("expected ready, got '{other}'"))),
        }
    }

    /// The daemon-assigned session id (the FNV-1a hash of the session
    /// string, in hex).
    pub fn session_id(&self) -> &str {
        &self.session_id
    }

    /// The daemon-side sweep summary after the last
    /// [`ServeClient::run_matrix`].
    pub fn summary(&self) -> SweepSummary {
        self.summary
    }

    /// The daemon-side quarantine list after the last
    /// [`ServeClient::run_matrix`].
    pub fn quarantine(&self) -> Vec<QuarantineRecord> {
        self.quarantine.clone()
    }

    fn expect_frame(&mut self) -> Result<Value, ClientError> {
        self.reader
            .next_frame()
            .map_err(ClientError::from)?
            .ok_or_else(|| ClientError::Protocol("daemon closed the connection".into()))
    }

    /// Runs `spec` on the daemon, relaying progress events to stderr,
    /// and returns the run records.
    ///
    /// # Errors
    ///
    /// [`ClientError::Sweep`] when the daemon reports a failed (or
    /// drain-interrupted) sweep; I/O and protocol errors as usual.
    pub fn run_matrix(&mut self, spec: &MatrixSpec) -> Result<Vec<RunRecord>, ClientError> {
        write_frame(
            &mut self.writer,
            &obj(vec![("type", Value::Str("sweep".into())), ("spec", spec_to_value(spec))]),
        )?;
        let mut done = 0usize;
        loop {
            let frame = self.expect_frame()?;
            match frame_type(&frame).unwrap_or("?") {
                "event" => {
                    if let Some(data) = frame.get("data") {
                        if data.get("ev").and_then(Value::as_str) == Some("end") {
                            done += 1;
                            eprint!("\r  {done}/{} runs (remote)", spec.len());
                            if done == spec.len() {
                                eprintln!();
                            }
                        }
                    }
                }
                "records" => {
                    self.summary = frame
                        .get("summary")
                        .ok_or_else(|| ClientError::Protocol("records without summary".into()))
                        .and_then(|v| {
                            summary_from_value(v).map_err(|e| ClientError::Protocol(e.0))
                        })?;
                    self.quarantine = frame
                        .get("quarantine")
                        .ok_or_else(|| ClientError::Protocol("records without quarantine".into()))
                        .and_then(|v| {
                            quarantine_from_value(v).map_err(|e| ClientError::Protocol(e.0))
                        })?;
                    let records = frame
                        .get("records")
                        .ok_or_else(|| {
                            ClientError::Protocol("records frame without records".into())
                        })
                        .and_then(|v| {
                            records_from_value(v).map_err(|e| ClientError::Protocol(e.0))
                        })?;
                    return Ok(records);
                }
                "sweep_error" => {
                    return Err(ClientError::Sweep {
                        detail: frame
                            .get("detail")
                            .and_then(Value::as_str)
                            .unwrap_or("no detail")
                            .to_string(),
                        draining: frame.get("draining").and_then(Value::as_bool).unwrap_or(false),
                    });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame '{other}' during sweep"
                    )));
                }
            }
        }
    }

    /// Fetches the session's artifact — exactly the bytes the daemon's
    /// engine would write as `BENCH_sweep.json`.
    ///
    /// # Errors
    ///
    /// I/O and protocol errors.
    pub fn artifact(&mut self) -> Result<String, ClientError> {
        write_frame(&mut self.writer, &obj(vec![("type", Value::Str("artifact".into()))]))?;
        loop {
            let frame = self.expect_frame()?;
            match frame_type(&frame).unwrap_or("?") {
                // A straggling event from the sweep is harmless here.
                "event" => {}
                "artifact" => {
                    return frame
                        .get("data")
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| {
                            ClientError::Protocol("artifact frame without data".into())
                        });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame '{other}' awaiting artifact"
                    )));
                }
            }
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// I/O and protocol errors.
    pub fn shutdown_daemon(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &obj(vec![("type", Value::Str("shutdown".into()))]))?;
        loop {
            let frame = self.expect_frame()?;
            match frame_type(&frame).unwrap_or("?") {
                "event" => {}
                "ok" => return Ok(()),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame '{other}' awaiting shutdown ack"
                    )));
                }
            }
        }
    }

    /// Closes the session politely.
    pub fn bye(mut self) {
        let _ = write_frame(&mut self.writer, &obj(vec![("type", Value::Str("bye".into()))]));
    }
}
