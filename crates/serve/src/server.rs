//! The resident sweep daemon.
//!
//! One [`Server`] owns a Unix-domain listener and serves each
//! connection on its own thread. Every connection is a *session* with
//! its own [`SweepEngine`] — all sessions share one result-cache
//! directory (safe: the cache publishes atomically and reclaims
//! corruption without deleting fresh entries) and one
//! [`AdmissionGate`], which bounds the daemon's total concurrently
//! executing jobs and rotates grants across sessions so concurrent
//! clients interleave instead of queueing behind each other.
//!
//! Engines run in deterministic-artifact mode, so a thin client's
//! artifact is byte-identical to what the same sweep produces in
//! process. With a journal directory configured, each session journals
//! under the FNV-1a hash of its client-chosen session string: a client
//! reconnecting after a daemon restart resumes its journal and re-runs
//! only unfinished jobs.
//!
//! Shutdown ([`Server::run`]'s flag, typically set from SIGTERM, or a
//! client `shutdown` frame) closes the admission gate: in-flight jobs
//! finish and journal, not-yet-admitted jobs are skipped, affected
//! sweeps report a draining error to their client, and the daemon exits
//! once every session thread has unwound.

use crate::protocol::{
    frame_type, quarantine_to_value, records_to_value, spec_from_value, summary_to_value,
    write_frame, FrameReader, PROTO_VERSION,
};
use regwin_obs::{Probe, StreamProbe};
use regwin_sweep::json::{obj, Value};
use regwin_sweep::{fnv1a, AdmissionGate, SweepConfigError, SweepEngine};
use std::io::{ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How the daemon is wired: where it listens and how its sessions run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Shared result-cache directory (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
    /// Per-session journal directory (`None` disables journaling and
    /// with it restart-resume).
    pub journal_dir: Option<PathBuf>,
    /// Global concurrently-executing-job bound, and each session
    /// engine's worker count (`0` = one per CPU).
    pub workers: usize,
    /// Connections beyond this count are turned away with a `busy`
    /// frame.
    pub max_clients: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            socket: PathBuf::from("regwin-served.sock"),
            cache_dir: Some(PathBuf::from("target/sweep-cache")),
            journal_dir: None,
            workers: 0,
            max_clients: 8,
        }
    }
}

/// State shared by the accept loop and every session thread.
struct Shared {
    config: ServerConfig,
    gate: Arc<AdmissionGate>,
    shutdown: Arc<AtomicBool>,
    active: AtomicUsize,
}

/// The resident daemon. Construct with [`Server::bind`], then drive
/// with [`Server::run`].
pub struct Server {
    listener: UnixListener,
    shared: Arc<Shared>,
}

/// The effective worker count `workers` requests (`0` = one per CPU,
/// mirroring the sweep engine's own default).
fn effective_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        workers
    }
}

impl Server {
    /// Binds the listening socket. A stale socket file left by a dead
    /// daemon is replaced; a live daemon on the same path is an error.
    ///
    /// # Errors
    ///
    /// Propagates bind errors, and refuses the path if another daemon
    /// is accepting on it.
    pub fn bind(config: ServerConfig, shutdown: Arc<AtomicBool>) -> std::io::Result<Self> {
        let listener = match UnixListener::bind(&config.socket) {
            Ok(l) => l,
            Err(e) if e.kind() == ErrorKind::AddrInUse => {
                if UnixStream::connect(&config.socket).is_ok() {
                    return Err(std::io::Error::new(
                        ErrorKind::AddrInUse,
                        format!("a daemon is already listening on {}", config.socket.display()),
                    ));
                }
                std::fs::remove_file(&config.socket)?;
                UnixListener::bind(&config.socket)?
            }
            Err(e) => return Err(e),
        };
        listener.set_nonblocking(true)?;
        let gate = Arc::new(AdmissionGate::new(effective_workers(config.workers)));
        let shared = Arc::new(Shared { config, gate, shutdown, active: AtomicUsize::new(0) });
        Ok(Server { listener, shared })
    }

    /// The socket path this daemon is accepting on.
    pub fn socket(&self) -> &PathBuf {
        &self.shared.config.socket
    }

    /// Accepts and serves sessions until the shutdown flag is set, then
    /// drains: closes the admission gate, joins every session thread
    /// (in-flight jobs finish and journal; queued ones are skipped) and
    /// removes the socket file.
    ///
    /// # Errors
    ///
    /// Propagates accept errors other than the nonblocking poll's
    /// `WouldBlock`.
    pub fn run(self) -> std::io::Result<()> {
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    if self.shared.active.load(Ordering::SeqCst) >= self.shared.config.max_clients {
                        let mut s = stream;
                        let _ = write_frame(
                            &mut s,
                            &obj(vec![
                                ("type", Value::Str("busy".into())),
                                (
                                    "detail",
                                    Value::Str(format!(
                                        "daemon at its {}-client limit",
                                        self.shared.config.max_clients
                                    )),
                                ),
                            ]),
                        );
                        continue;
                    }
                    self.shared.active.fetch_add(1, Ordering::SeqCst);
                    let shared = Arc::clone(&self.shared);
                    sessions.push(std::thread::spawn(move || {
                        serve_session(stream, &shared);
                        shared.active.fetch_sub(1, Ordering::SeqCst);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    sessions.retain(|h| !h.is_finished());
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: no new admissions; in-flight jobs finish and journal.
        self.shared.gate.close();
        for handle in sessions {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.shared.config.socket);
        Ok(())
    }
}

/// Reads frames off `reader`, treating the poll timeout as "check the
/// shutdown flag and keep waiting". Returns `None` on EOF, a dead peer,
/// or daemon shutdown.
fn next_frame(reader: &mut FrameReader<UnixStream>, shared: &Shared) -> Option<Value> {
    loop {
        match reader.next_frame() {
            Ok(frame) => return frame,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

fn send(writer: &Mutex<UnixStream>, frame: &Value) -> bool {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    write_frame(&mut *w, frame).is_ok()
}

/// Builds the session's engine: shared cache, deterministic artifacts,
/// gate admission, a per-session resumable journal, and an event stream
/// back to the client.
///
/// A journal already locked by a live engine (the same session string
/// connected twice) degrades to an unjournaled session — results are
/// still correct and deterministic, only restart-resume is lost.
fn session_engine(shared: &Shared, session_id: u64, writer: Arc<Mutex<UnixStream>>) -> SweepEngine {
    let builder = || {
        let mut b = regwin_sweep::SweepConfig::builder()
            .workers(shared.config.workers)
            .deterministic_artifact(true)
            .admission(Arc::clone(&shared.gate), session_id);
        if let Some(dir) = &shared.config.cache_dir {
            b = b.cache_dir(dir.clone());
        }
        let probe_writer = Arc::clone(&writer);
        let probe = StreamProbe::new(move |line: &str| {
            let mut w = probe_writer.lock().unwrap_or_else(|e| e.into_inner());
            let _ = w.write_all(format!("{{\"type\":\"event\",\"data\":{line}}}\n").as_bytes());
            let _ = w.flush();
        });
        b.probe(Arc::new(probe) as Arc<dyn Probe>)
    };
    let journaled = shared.config.journal_dir.as_ref().map(|dir| {
        builder()
            .journal(dir.join(format!("{session_id:016x}.journal.jsonl")))
            .resume(true)
            .build()
            .expect("journaled session config is valid")
    });
    match journaled {
        None => SweepEngine::with_config(builder().build().expect("session config is valid")),
        Some(config) => match SweepEngine::try_with_config(config) {
            Ok(engine) => engine,
            Err(SweepConfigError::JournalBusy { path }) => {
                eprintln!(
                    "session {session_id:016x}: journal {} is busy (same session connected \
                     twice?); running unjournaled",
                    path.display()
                );
                SweepEngine::with_config(builder().build().expect("session config is valid"))
            }
            Err(e) => {
                eprintln!("session {session_id:016x}: {e}; running unjournaled");
                SweepEngine::with_config(builder().build().expect("session config is valid"))
            }
        },
    }
}

/// One connection, hello to bye.
fn serve_session(stream: UnixStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(write_half) = stream.try_clone() else { return };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = FrameReader::new(stream);

    // Handshake.
    let Some(hello) = next_frame(&mut reader, shared) else { return };
    let ok = frame_type(&hello) == Ok("hello")
        && hello.get("proto").and_then(Value::as_u64) == Some(PROTO_VERSION);
    let Some(session) = hello.get("session").and_then(Value::as_str) else { return };
    if !ok {
        let _ = send(
            &writer,
            &obj(vec![
                ("type", Value::Str("sweep_error".into())),
                ("detail", Value::Str(format!("expected hello with proto {PROTO_VERSION}"))),
                ("draining", Value::Bool(false)),
            ]),
        );
        return;
    }
    let session_id = fnv1a(session.as_bytes());
    let engine = session_engine(shared, session_id, Arc::clone(&writer));
    if !send(
        &writer,
        &obj(vec![
            ("type", Value::Str("ready".into())),
            ("proto", Value::Int(PROTO_VERSION)),
            ("session_id", Value::Str(format!("{session_id:016x}"))),
        ]),
    ) {
        return;
    }

    while let Some(frame) = next_frame(&mut reader, shared) {
        match frame_type(&frame).unwrap_or("?") {
            "sweep" => {
                let spec = match frame.get("spec").ok_or(()).and_then(|v| {
                    spec_from_value(v).map_err(|e| {
                        let _ = send(
                            &writer,
                            &obj(vec![
                                ("type", Value::Str("sweep_error".into())),
                                ("detail", Value::Str(e.to_string())),
                                ("draining", Value::Bool(false)),
                            ]),
                        );
                    })
                }) {
                    Ok(spec) => spec,
                    Err(()) => continue,
                };
                let skipped_before = engine.shutdown_skipped();
                let outcome = engine.run_matrix(&spec);
                let skipped = engine.shutdown_skipped() - skipped_before;
                let reply = match outcome {
                    Ok(_) if skipped > 0 => obj(vec![
                        ("type", Value::Str("sweep_error".into())),
                        (
                            "detail",
                            Value::Str(format!(
                                "daemon draining: {skipped} job(s) were not admitted; completed \
                                 jobs are journaled — reconnect after restart to resume"
                            )),
                        ),
                        ("draining", Value::Bool(true)),
                    ]),
                    Ok(records) => obj(vec![
                        ("type", Value::Str("records".into())),
                        ("records", records_to_value(&records)),
                        ("summary", summary_to_value(&engine.summary())),
                        ("quarantine", quarantine_to_value(&engine.quarantine())),
                    ]),
                    Err(e) => obj(vec![
                        ("type", Value::Str("sweep_error".into())),
                        ("detail", Value::Str(e.to_string())),
                        ("draining", Value::Bool(false)),
                    ]),
                };
                if !send(&writer, &reply) {
                    return;
                }
            }
            "artifact" => {
                // Exactly the bytes `SweepEngine::write_artifact` would
                // write, so a thin client's file `cmp`s clean against
                // the in-process path.
                let data = engine.artifact_value().to_json();
                if !send(
                    &writer,
                    &obj(vec![("type", Value::Str("artifact".into())), ("data", Value::Str(data))]),
                ) {
                    return;
                }
            }
            "shutdown" => {
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.gate.close();
                let _ = send(&writer, &obj(vec![("type", Value::Str("ok".into()))]));
            }
            "bye" => return,
            other => {
                let _ = send(
                    &writer,
                    &obj(vec![
                        ("type", Value::Str("sweep_error".into())),
                        ("detail", Value::Str(format!("unknown frame type '{other}'"))),
                        ("draining", Value::Bool(false)),
                    ]),
                );
            }
        }
    }
}
