//! # regwin-serve
//!
//! Sweep-as-a-service: a resident daemon that runs `regwin-sweep`
//! matrices for thin clients over a local Unix-domain socket, speaking
//! newline-delimited JSON (see [`protocol`]).
//!
//! Why a daemon? Repro binaries spend most of their wall-clock in the
//! sweep; a resident daemon keeps one warm, multi-client-safe result
//! cache and one bounded worker pool shared by every client, so
//! concurrent repro invocations dedupe their overlapping job keys
//! instead of each recomputing (or each fighting for every core).
//!
//! The correctness spine is byte-identity: session engines run in
//! deterministic-artifact mode, records cross the wire losslessly, and
//! a thin client's `BENCH_sweep.json` is byte-identical to the
//! in-process path — `repro-tradeoff --server <socket>` and
//! `repro-tradeoff --journal` must `cmp` equal. Graceful shutdown
//! drains in-flight jobs into per-session journals; a restarted daemon
//! resumes them so the eventual artifact is still byte-identical.
//!
//! Run the daemon with `cargo run --release -p regwin-serve --bin
//! regwin-served -- --socket <path>`; point repro binaries at it with
//! `--server <path>` (see EXPERIMENTS.md, "Sweep service").

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, ServeClient};
pub use server::{Server, ServerConfig};
