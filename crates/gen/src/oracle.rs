//! The differential-oracle invariant bundle: one generated scenario,
//! several independently built executions, and the requirement that
//! they all tell the same story.
//!
//! | invariant | left run | right run |
//! |-----------|----------|-----------|
//! | `trace-replay` | event-trace replay of the direct run | the direct run |
//! | `cluster-1pe` | the scenario on a 1-PE cluster over the shared bus | the direct run |
//! | `masked-fault` | the scenario with seeded masked spill/fill corruption, audited | the audited fault-free run |
//! | `injected-fault` | the scenario under the sweep's `--fault-plan` | the direct run |
//!
//! A divergence (or an error in any leg) makes [`run_bundle`] return an
//! error whose detail names the invariant and the first differing
//! field; the sweep engine then quarantines the job with the
//! scenario's full reproducer string.

use crate::spec::WorkloadSpec;
use crate::workload::Workload;
use regwin_cluster::{BusConfig, ClusterBuilder};
use regwin_machine::{MachineConfig, SchemeKind, TimingKind};
use regwin_rt::{
    fuzzed_policy, FaultKind, FaultPlan, RtError, RunReport, SchedulingPolicy, SimOptions,
    Simulation, Trace,
};
use regwin_traps::build_scheme;

/// Perturbation budget every fuzzed scenario runs with. Fixed (rather
/// than spec-derived) so a reproducer string needs only the fuzz seed.
pub const FUZZ_BUDGET: u32 = 8;

/// A complete, reproducible test case: the workload spec plus every
/// harness knob that shapes its execution. [`Scenario::canonical`]
/// serializes the whole thing into one string and
/// [`Scenario::parse`] brings it back — the reproducer format
/// quarantine records and `repro-fuzz --gen` speak.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The synthesized workload.
    pub spec: WorkloadSpec,
    /// Scheduling policy for every leg of the bundle.
    pub policy: SchedulingPolicy,
    /// Timing backend.
    pub timing: TimingKind,
    /// Window-management scheme.
    pub scheme: SchemeKind,
    /// Physical window count.
    pub nwindows: usize,
    /// Window auditing on the direct run.
    pub audit: bool,
    /// Schedule-fuzz seed: when set, every leg runs under
    /// [`Fuzzed`](regwin_rt::Fuzzed) around `policy` with
    /// [`FUZZ_BUDGET`] perturbations.
    pub fuzz: Option<u64>,
    /// Externally injected fault plan (the sweep's `--fault-plan`),
    /// exercised by the `injected-fault` invariant.
    pub fault: Option<FaultPlan>,
}

impl Scenario {
    /// A clean scenario over `spec` with paper-default knobs.
    pub fn new(spec: WorkloadSpec) -> Self {
        Scenario {
            spec,
            policy: SchedulingPolicy::Fifo,
            timing: TimingKind::S20,
            scheme: SchemeKind::Sp,
            nwindows: 6,
            audit: false,
            fuzz: None,
            fault: None,
        }
    }

    /// The machine configuration every leg runs with.
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig::new(self.nwindows).with_timing(self.timing)
    }

    /// The canonical scenario string: semicolon-separated `key=value`
    /// fields (`spec` uses the [`WorkloadSpec`] comma grammar; `plan`
    /// is the fault-plan canonical). Round-trips through
    /// [`Scenario::parse`].
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "spec={};policy={};timing={};scheme={};w={};audit={}",
            self.spec.canonical(),
            self.policy,
            self.timing,
            self.scheme,
            self.nwindows,
            u8::from(self.audit),
        );
        if let Some(seed) = self.fuzz {
            s.push_str(&format!(";fuzz={seed:#x}"));
        }
        if let Some(plan) = &self.fault {
            if !plan.is_empty() {
                s.push_str(&format!(";plan={};planseed={:#x}", plan.canonical(), plan.seed()));
            }
        }
        s
    }

    /// Parses a canonical scenario string.
    ///
    /// # Errors
    ///
    /// Describes the first missing or malformed field.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut sc = Scenario::new(WorkloadSpec::from_seed(0));
        let mut saw_spec = false;
        let mut plan_seed = None;
        for field in s.split(';').map(str::trim).filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("scenario field '{field}' is not key=value"))?;
            let value = value.trim();
            match key.trim() {
                "spec" => {
                    sc.spec = WorkloadSpec::parse(value)?;
                    saw_spec = true;
                }
                "policy" => {
                    sc.policy = SchedulingPolicy::parse(value)
                        .ok_or_else(|| format!("unknown policy '{value}'"))?;
                }
                "timing" => {
                    sc.timing = TimingKind::parse(value)
                        .ok_or_else(|| format!("unknown timing backend '{value}'"))?;
                }
                "scheme" => {
                    sc.scheme = SchemeKind::ALL
                        .into_iter()
                        .find(|k| k.name().eq_ignore_ascii_case(value))
                        .ok_or_else(|| format!("unknown scheme '{value}'"))?;
                }
                "w" => {
                    sc.nwindows = value
                        .parse()
                        .map_err(|_| format!("window count '{value}' is not an integer"))?;
                }
                "audit" => sc.audit = value == "1" || value.eq_ignore_ascii_case("true"),
                "fuzz" => sc.fuzz = Some(parse_u64(value)?),
                "plan" => {
                    sc.fault = Some(FaultPlan::parse(value).map_err(|e| e.to_string())?);
                }
                "planseed" => plan_seed = Some(parse_u64(value)?),
                other => return Err(format!("unknown scenario field '{other}'")),
            }
        }
        if !saw_spec {
            return Err("scenario has no spec= field".into());
        }
        if let Some(seed) = plan_seed {
            match sc.fault.take() {
                Some(plan) => sc.fault = Some(plan.with_seed(seed)),
                None => return Err("planseed= without plan=".into()),
            }
        }
        Ok(sc)
    }

    /// The [`SimOptions`] for one leg of the bundle.
    fn options(&self, traced: bool, fault: Option<FaultPlan>, audit: bool) -> SimOptions {
        SimOptions {
            policy: self.policy,
            sched: self.fuzz.map(|seed| fuzzed_policy(self.policy, seed, FUZZ_BUDGET)),
            audit,
            traced,
            fault,
        }
    }

    /// Builds and installs one leg's simulation.
    fn build(
        &self,
        workload: &Workload,
        traced: bool,
        fault: Option<FaultPlan>,
        audit: bool,
    ) -> Result<Simulation, RtError> {
        let mut sim = Simulation::assemble(
            self.machine_config(),
            build_scheme(self.scheme),
            self.options(traced, fault, audit),
        )?;
        workload.install(&mut sim);
        Ok(sim)
    }
}

fn parse_u64(v: &str) -> Result<u64, String> {
    if let Some(hex) = v.strip_prefix("0x") { u64::from_str_radix(hex, 16) } else { v.parse() }
        .map_err(|_| format!("'{v}' is not an integer"))
}

/// The seeded masked-fault plan the `masked-fault` invariant injects:
/// spill and fill corruption at spec-derived indices. Masked kinds
/// only, so with auditing the run must repair silently and report
/// numbers byte-identical to a fault-free run.
pub fn masked_plan(spec: &WorkloadSpec) -> FaultPlan {
    FaultPlan::new()
        .with_event(FaultKind::SpillCorrupt, spec.seed % 7)
        .with_event(FaultKind::FillCorrupt, spec.seed % 5)
        .with_seed(spec.seed)
}

/// Runs one leg to completion, optionally returning its trace.
fn run_leg(
    sc: &Scenario,
    wl: &Workload,
    traced: bool,
    fault: Option<FaultPlan>,
    audit: bool,
) -> Result<(RunReport, Option<Trace>), RtError> {
    sc.build(wl, traced, fault, audit)?.run_with_trace()
}

/// Runs the scenario as a 1-PE cluster over the shared bus — the
/// discrete-event path, which must agree with the legacy direct path
/// byte-for-byte.
fn run_cluster_leg(sc: &Scenario, wl: &Workload) -> Result<RunReport, RtError> {
    let sim = sc.build(wl, false, None, sc.audit)?;
    let mut cluster = ClusterBuilder::new(BusConfig::default());
    cluster.add_pe(sim.start());
    let report = cluster.run()?;
    Ok(report.reports.into_iter().next().expect("1-PE cluster has a PE-0 report"))
}

/// Compares two reports under an invariant name, returning a typed
/// error naming the first difference.
fn expect_eq(invariant: &str, got: &RunReport, want: &RunReport) -> Result<(), RtError> {
    if got == want {
        return Ok(());
    }
    Err(RtError::Internal {
        detail: format!("invariant {invariant} diverged: {}", first_difference(got, want)),
    })
}

/// A short human-readable description of the first differing report
/// field (quarantine details must stay greppable, not dumps).
fn first_difference(got: &RunReport, want: &RunReport) -> String {
    if got.cycles != want.cycles {
        return format!("cycles {} vs {}", got.cycles, want.cycles);
    }
    if got.stats != want.stats {
        return format!("stats {:?} vs {:?}", got.stats, want.stats);
    }
    if got.threads.len() != want.threads.len() {
        return format!("thread count {} vs {}", got.threads.len(), want.threads.len());
    }
    for (g, w) in got.threads.iter().zip(&want.threads) {
        if g != w {
            return format!("thread {} reports {:?} vs {:?}", g.name, g, w);
        }
    }
    "reports differ outside cycles/stats/threads".to_string()
}

/// Runs the full invariant bundle for `sc`, returning the direct run's
/// report when every invariant holds.
///
/// # Errors
///
/// Any leg error, or a typed `invariant ... diverged` error naming the
/// first invariant that failed. Either way the sweep engine quarantines
/// the job and its reproducer.
pub fn run_bundle(sc: &Scenario) -> Result<RunReport, RtError> {
    let wl = Workload::synthesize(&sc.spec);

    // Direct run, traced — the reference every other leg compares to.
    let (base, trace) = run_leg(sc, &wl, true, None, sc.audit)?;
    let trace =
        trace.ok_or_else(|| RtError::Internal { detail: "traced run returned no trace".into() })?;

    // Invariant: replaying the event trace on a fresh CPU reproduces
    // the direct run. Replay always reports FIFO (the trace encodes
    // the schedule, not the policy), so normalize that field.
    let mut replayed =
        trace.replay_with_options(sc.machine_config(), build_scheme(sc.scheme), None, false)?;
    replayed.policy = base.policy;
    replayed.bus = base.bus.clone();
    expect_eq("trace-replay", &replayed, &base)?;

    // Invariant: a 1-PE cluster is the legacy path.
    let cluster = run_cluster_leg(sc, &wl)?;
    expect_eq("cluster-1pe", &cluster, &base)?;

    // Invariant: masked corruption under audit repairs silently. The
    // comparison pair is always audited; when the scenario itself is
    // unaudited the reference leg is rerun with audit on (auditing is
    // pure bookkeeping, so its report matches the unaudited one —
    // which this leg also cross-checks).
    let audited_base = if sc.audit {
        base.clone()
    } else {
        let (b, _) = run_leg(sc, &wl, false, None, true)?;
        expect_eq("audit-transparency", &b, &base)?;
        b
    };
    let (masked, _) = run_leg(sc, &wl, false, Some(masked_plan(&sc.spec)), true)?;
    expect_eq("masked-fault", &masked, &audited_base)?;

    // Invariant: an externally injected plan either leaves the report
    // untouched (masked faults) or errors out of this bundle — every
    // unmasked fault is detected, never silently absorbed.
    if let Some(plan) = &sc.fault {
        if plan.has_sim_faults() {
            let (faulted, _) = run_leg(sc, &wl, false, Some(plan.clone()), sc.audit)?;
            expect_eq("injected-fault", &faulted, &base)?;
        }
    }

    Ok(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(seed: u64) -> Scenario {
        Scenario::new(WorkloadSpec::from_seed(seed))
    }

    #[test]
    fn clean_bundles_pass_across_policies_and_timings() {
        for (i, seed) in [0u64, 11, 29].into_iter().enumerate() {
            let mut sc = scenario(seed);
            sc.policy = SchedulingPolicy::ALL[i % SchedulingPolicy::ALL.len()];
            sc.timing = TimingKind::ALL[i % TimingKind::ALL.len()];
            sc.scheme = SchemeKind::ALL[i % SchemeKind::ALL.len()];
            run_bundle(&sc).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn fuzzed_bundles_pass_and_fuzzing_changes_the_schedule() {
        let mut sc = scenario(5);
        let base = run_bundle(&sc).unwrap();
        sc.fuzz = Some(0xF00D);
        let fuzzed = run_bundle(&sc).unwrap();
        // Same program, so the same work gets done...
        assert_eq!(
            base.threads.iter().map(|t| &t.name).collect::<Vec<_>>(),
            fuzzed.threads.iter().map(|t| &t.name).collect::<Vec<_>>(),
        );
        // ...and the fuzzed schedule is reproducible.
        assert_eq!(run_bundle(&sc).unwrap(), fuzzed);
    }

    #[test]
    fn unmasked_injected_fault_is_detected() {
        let mut sc = scenario(2);
        sc.audit = true;
        sc.fault = Some(FaultPlan::new().with_event(FaultKind::ResidentCorrupt, 3));
        // The failure may surface as an injected-fault report
        // divergence or as a typed runtime error from the faulted leg
        // (quarantine of the corrupted thread cascades into its
        // stream neighbours) — either way the bundle must error.
        let err = run_bundle(&sc).unwrap_err();
        assert!(!err.to_string().is_empty());
        // And the failure is deterministic: the reproducer fails the
        // same way.
        let again = run_bundle(&Scenario::parse(&sc.canonical()).unwrap()).unwrap_err();
        assert_eq!(err.to_string(), again.to_string());
    }

    #[test]
    fn masked_injected_fault_passes() {
        let mut sc = scenario(2);
        sc.audit = true;
        sc.fault = Some(masked_plan(&sc.spec));
        run_bundle(&sc).unwrap();
    }

    #[test]
    fn scenario_canonical_round_trips() {
        let mut sc = scenario(77);
        sc.policy = SchedulingPolicy::Aging;
        sc.timing = TimingKind::Pipeline;
        sc.scheme = SchemeKind::Ns;
        sc.nwindows = 8;
        sc.audit = true;
        sc.fuzz = Some(0xBEEF);
        sc.fault = Some(FaultPlan::parse("resident-corrupt@4").unwrap().with_seed(9));
        let parsed = Scenario::parse(&sc.canonical()).unwrap();
        assert_eq!(parsed, sc);
        // And the minimal clean form round-trips too.
        let clean = scenario(3);
        assert_eq!(Scenario::parse(&clean.canonical()).unwrap(), clean);
    }
}
