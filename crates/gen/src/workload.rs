//! Workload synthesis: turning a [`WorkloadSpec`] into concrete thread
//! programs, and interpreting those programs through the runtime's
//! [`Ctx`] op stream.
//!
//! A synthesized workload is plain data — streams, threads, and per
//! thread a step list — so its byte encoding can be compared across
//! runs (the generator-determinism property test) and its execution is
//! a pure fold over [`Ctx`] calls: exactly the op stream the spell
//! pipeline feeds the runtime, which is why generated scenarios run
//! unmodified through machine, rt and cluster under any policy ×
//! timing backend.

use crate::spec::{splitmix64, WorkloadSpec};
use regwin_rt::{Ctx, RtError, Simulation, StreamId};

/// What a work item does at the bottom of its call descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepIo {
    /// Pure compute, no stream traffic (burst-gap steps).
    None,
    /// Write this byte to the thread's output stream (sources).
    Write(u8),
    /// Read one byte from the input stream and forward
    /// `byte.wrapping_add(1)` to the output stream (relays).
    Forward,
    /// Read one byte from the input stream and check it equals the
    /// synthesized expectation (sinks); a mismatch is a typed runtime
    /// error, so stream-level corruption can never pass silently.
    ReadExpect(u8),
}

/// One work item: descend `depth` call frames, charge `compute` cycles
/// at the bottom, perform the I/O there, and return back up. Every
/// frame of the descent is a real `save`/`restore` pair on the
/// simulated CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Call frames to descend (bounded by the spec's `max_depth`).
    pub depth: u8,
    /// Cycles charged at the bottom frame.
    pub compute: u16,
    /// The bottom-frame I/O.
    pub io: StepIo,
}

/// A stream to create on the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamDef {
    /// Stream name (shows up in deadlock details and traces).
    pub name: String,
    /// Byte capacity.
    pub capacity: usize,
}

/// One synthesized thread: a name, its stream endpoints (indices into
/// [`Workload::streams`]) and the step list it interprets. After the
/// steps, a thread with an input reads end-of-stream (anything else is
/// an error) and a thread with an output closes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadProgram {
    /// Thread name (`c<chain>t<stage>:<role>`).
    pub name: String,
    /// Input stream index, if the thread consumes one.
    pub input: Option<usize>,
    /// Output stream index, if the thread produces one.
    pub output: Option<usize>,
    /// The work items, in program order.
    pub steps: Vec<Step>,
}

/// A fully synthesized workload: pure data, ready to install on any
/// [`Simulation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// The spec this workload was synthesized from.
    pub spec: WorkloadSpec,
    /// Streams to create, in creation order.
    pub streams: Vec<StreamDef>,
    /// Threads to spawn, in spawn order.
    pub threads: Vec<ThreadProgram>,
}

impl Workload {
    /// Synthesizes the workload for `spec`. Deterministic: the same
    /// spec always produces the identical structure, step lists and
    /// payload bytes (the fuzz farm's cache keys and reproducers rely
    /// on it).
    pub fn synthesize(spec: &WorkloadSpec) -> Workload {
        let mut state = spec.seed ^ 0x5EED_F00D_CAFE_D00D;
        let mut streams = Vec::new();
        let mut threads = Vec::new();
        let relays = usize::from(spec.stages) - 2;
        for chain in 0..usize::from(spec.chains) {
            let first_stream = streams.len();
            for link in 0..usize::from(spec.stages) - 1 {
                streams.push(StreamDef {
                    name: format!("c{chain}s{link}"),
                    capacity: usize::from(spec.capacity),
                });
            }
            // Source: sampled payload bytes in bursts, a pure-compute
            // gap step after each burst.
            let payload: Vec<u8> =
                (0..spec.payload).map(|_| (splitmix64(&mut state) & 0x7F) as u8).collect();
            let mut steps = Vec::new();
            for (i, &b) in payload.iter().enumerate() {
                steps.push(Step {
                    depth: spec.depth.sample(&mut state, spec.max_depth),
                    compute: spec.compute,
                    io: StepIo::Write(b),
                });
                if (i + 1) % usize::from(spec.burst) == 0 {
                    steps.push(Step {
                        depth: spec.depth.sample(&mut state, spec.max_depth),
                        compute: spec.compute * 2,
                        io: StepIo::None,
                    });
                }
            }
            threads.push(ThreadProgram {
                name: format!("c{chain}t0:source"),
                input: None,
                output: Some(first_stream),
                steps,
            });
            // Relays: one forward per payload byte, sampled depths.
            for r in 0..relays {
                let steps = (0..spec.payload)
                    .map(|_| Step {
                        depth: spec.depth.sample(&mut state, spec.max_depth),
                        compute: spec.compute,
                        io: StepIo::Forward,
                    })
                    .collect();
                threads.push(ThreadProgram {
                    name: format!("c{chain}t{}:relay", r + 1),
                    input: Some(first_stream + r),
                    output: Some(first_stream + r + 1),
                    steps,
                });
            }
            // Sink: each relay bumped the byte by one, so the expected
            // arrivals are statically known.
            let steps = payload
                .iter()
                .map(|&b| Step {
                    depth: spec.depth.sample(&mut state, spec.max_depth),
                    compute: spec.compute,
                    io: StepIo::ReadExpect(b.wrapping_add(relays as u8)),
                })
                .collect();
            threads.push(ThreadProgram {
                name: format!("c{chain}t{}:sink", usize::from(spec.stages) - 1),
                input: Some(first_stream + relays),
                output: None,
                steps,
            });
        }
        Workload { spec: *spec, streams, threads }
    }

    /// Total work items across all threads (the scenario-census
    /// number `BENCH_fuzz.json` reports).
    pub fn total_steps(&self) -> usize {
        self.threads.iter().map(|t| t.steps.len()).sum()
    }

    /// A canonical byte encoding of the whole workload — structure,
    /// streams, step lists, payload bytes. Two encodings are equal iff
    /// the synthesized op streams are identical; the determinism
    /// property tests compare these across runs and across threads.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.spec.canonical().as_bytes());
        for s in &self.streams {
            out.push(b'|');
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&(s.capacity as u32).to_le_bytes());
        }
        for t in &self.threads {
            out.push(b'#');
            out.extend_from_slice(t.name.as_bytes());
            out.push(t.input.map_or(0xFF, |i| i as u8));
            out.push(t.output.map_or(0xFF, |i| i as u8));
            for step in &t.steps {
                out.push(step.depth);
                out.extend_from_slice(&step.compute.to_le_bytes());
                match step.io {
                    StepIo::None => out.push(0),
                    StepIo::Write(b) => out.extend_from_slice(&[1, b]),
                    StepIo::Forward => out.push(2),
                    StepIo::ReadExpect(b) => out.extend_from_slice(&[3, b]),
                }
            }
        }
        out
    }

    /// Creates the streams and spawns the threads on `sim` (in
    /// synthesis order, so the schedule is a pure function of the
    /// scenario).
    pub fn install(&self, sim: &mut Simulation) {
        let ids: Vec<StreamId> =
            self.streams.iter().map(|s| sim.add_stream(s.name.clone(), s.capacity, 1)).collect();
        for t in &self.threads {
            let prog = ResolvedProgram {
                input: t.input.map(|i| ids[i]),
                output: t.output.map(|i| ids[i]),
                steps: t.steps.clone(),
            };
            sim.spawn(t.name.clone(), move |ctx| prog.run(ctx));
        }
    }
}

/// A thread program with its stream indices resolved to live ids —
/// what actually moves into the spawned closure.
#[derive(Debug, Clone)]
struct ResolvedProgram {
    input: Option<StreamId>,
    output: Option<StreamId>,
    steps: Vec<Step>,
}

impl ResolvedProgram {
    fn run(self, ctx: &mut Ctx) -> Result<(), RtError> {
        for step in &self.steps {
            self.exec(ctx, step.depth, step)?;
        }
        // Epilogue: drain end-of-stream, then close downstream.
        if let Some(input) = self.input {
            if let Some(extra) = ctx.read_byte(input)? {
                return Err(RtError::Internal {
                    detail: format!("generated stream carried unexpected trailing byte {extra:#x}"),
                });
            }
        }
        if let Some(output) = self.output {
            ctx.close_writer(output)?;
        }
        Ok(())
    }

    fn exec(&self, ctx: &mut Ctx, depth: u8, step: &Step) -> Result<(), RtError> {
        if depth > 0 {
            return ctx.call(|ctx| self.exec(ctx, depth - 1, step));
        }
        if step.compute > 0 {
            ctx.compute(u64::from(step.compute));
        }
        match step.io {
            StepIo::None => Ok(()),
            StepIo::Write(b) => {
                ctx.write_byte(self.output.expect("writer step on a thread with no output"), b)
            }
            StepIo::Forward => {
                let input = self.input.expect("forward step on a thread with no input");
                let output = self.output.expect("forward step on a thread with no output");
                match ctx.read_byte(input)? {
                    Some(b) => ctx.write_byte(output, b.wrapping_add(1)),
                    None => Err(RtError::Internal {
                        detail: "generated stream ended before the program did".into(),
                    }),
                }
            }
            StepIo::ReadExpect(want) => {
                let input = self.input.expect("read step on a thread with no input");
                match ctx.read_byte(input)? {
                    Some(got) if got == want => Ok(()),
                    Some(got) => Err(RtError::Internal {
                        detail: format!("generated sink expected {want:#x}, got {got:#x}"),
                    }),
                    None => Err(RtError::Internal {
                        detail: "generated stream ended before the program did".into(),
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regwin_machine::SchemeKind;

    #[test]
    fn synthesis_is_byte_deterministic() {
        for seed in 0..100u64 {
            let spec = WorkloadSpec::from_seed(seed);
            assert_eq!(
                Workload::synthesize(&spec).encode(),
                Workload::synthesize(&spec).encode(),
                "seed {seed}",
            );
        }
    }

    #[test]
    fn synthesis_is_byte_deterministic_across_threads() {
        // The --jobs 1 vs --jobs 8 half of the determinism property:
        // concurrent synthesis on 8 threads produces the identical
        // encoding, so parallel sweep workers see the same workload.
        let spec = WorkloadSpec::from_seed(0xFEED);
        let reference = Workload::synthesize(&spec).encode();
        let encodings: Vec<Vec<u8>> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..8).map(|_| scope.spawn(|| Workload::synthesize(&spec).encode())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for e in encodings {
            assert_eq!(e, reference);
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_op_streams() {
        let distinct: std::collections::HashSet<Vec<u8>> =
            (0..50).map(|s| Workload::synthesize(&WorkloadSpec::from_seed(s)).encode()).collect();
        assert_eq!(distinct.len(), 50);
    }

    #[test]
    fn topology_matches_the_spec() {
        for seed in 0..30u64 {
            let spec = WorkloadSpec::from_seed(seed);
            let wl = Workload::synthesize(&spec);
            assert_eq!(wl.threads.len(), spec.threads());
            assert_eq!(wl.streams.len(), usize::from(spec.chains) * (usize::from(spec.stages) - 1),);
        }
    }

    #[test]
    fn generated_scenarios_run_clean_on_the_runtime() {
        for seed in [0u64, 3, 17] {
            let spec = WorkloadSpec::from_seed(seed);
            let wl = Workload::synthesize(&spec);
            let mut sim = Simulation::new(6, SchemeKind::Sp).unwrap();
            wl.install(&mut sim);
            let report = sim.run().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(report.stats.context_switches > 0, "seed {seed} never switched");
        }
    }
}
