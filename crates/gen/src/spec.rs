//! The seeded workload specification: a handful of integers and one
//! depth distribution that fully determine a generated scenario.

use std::fmt;

/// The splitmix64 generator step — the same dependency-free PRNG the
/// fault planner uses, so every derived quantity in this crate is a
/// pure function of a `u64` seed.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-work-item call-depth distribution: how many nested
/// [`Ctx::call`](regwin_rt::Ctx::call) frames a thread descends before
/// touching its streams. Depth is what drives window overflow/underflow
/// traps, so the distribution shape is the generator's main knob on the
/// window-pressure profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepthDist {
    /// Geometric: descend another frame with probability
    /// `percent`/100, capped at the spec's recursion bound.
    Geometric {
        /// Continue-probability in percent (1..=95).
        percent: u8,
    },
    /// Uniform over `lo..=hi` (both capped at the recursion bound).
    Uniform {
        /// Inclusive lower bound.
        lo: u8,
        /// Inclusive upper bound.
        hi: u8,
    },
    /// Bimodal: depth `lo` most of the time, a deep `hi` excursion
    /// with probability `hi_percent`/100 — shallow steady-state with
    /// occasional full-stack walks, the adversarial case for
    /// residency-based schedulers.
    Bimodal {
        /// The common shallow depth.
        lo: u8,
        /// The rare deep depth.
        hi: u8,
        /// Probability of the deep excursion, in percent (1..=50).
        hi_percent: u8,
    },
}

impl DepthDist {
    /// Samples a depth, capped at `max`.
    pub fn sample(&self, state: &mut u64, max: u8) -> u8 {
        let d = match *self {
            DepthDist::Geometric { percent } => {
                let mut depth = 0u8;
                while depth < max && (splitmix64(state) % 100) < u64::from(percent) {
                    depth += 1;
                }
                depth
            }
            DepthDist::Uniform { lo, hi } => {
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                lo + (splitmix64(state) % u64::from(hi - lo + 1)) as u8
            }
            DepthDist::Bimodal { lo, hi, hi_percent } => {
                if (splitmix64(state) % 100) < u64::from(hi_percent) {
                    hi
                } else {
                    lo
                }
            }
        };
        d.min(max)
    }

    /// The canonical grammar form: `geo:P`, `uni:LO-HI` or
    /// `bi:LO-HI@P`.
    pub fn canonical(&self) -> String {
        match *self {
            DepthDist::Geometric { percent } => format!("geo:{percent}"),
            DepthDist::Uniform { lo, hi } => format!("uni:{lo}-{hi}"),
            DepthDist::Bimodal { lo, hi, hi_percent } => format!("bi:{lo}-{hi}@{hi_percent}"),
        }
    }

    /// Parses the canonical grammar form.
    ///
    /// # Errors
    ///
    /// Describes the first token that does not fit the grammar.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (kind, rest) =
            s.split_once(':').ok_or_else(|| format!("depth '{s}' is not kind:params"))?;
        let int = |t: &str| -> Result<u8, String> {
            t.parse().map_err(|_| format!("depth parameter '{t}' is not a small integer"))
        };
        match kind {
            "geo" => Ok(DepthDist::Geometric { percent: int(rest)? }),
            "uni" => {
                let (lo, hi) = rest
                    .split_once('-')
                    .ok_or_else(|| format!("uniform depth '{rest}' is not LO-HI"))?;
                Ok(DepthDist::Uniform { lo: int(lo)?, hi: int(hi)? })
            }
            "bi" => {
                let (range, pct) = rest
                    .split_once('@')
                    .ok_or_else(|| format!("bimodal depth '{rest}' is not LO-HI@P"))?;
                let (lo, hi) = range
                    .split_once('-')
                    .ok_or_else(|| format!("bimodal depth '{range}' is not LO-HI"))?;
                Ok(DepthDist::Bimodal { lo: int(lo)?, hi: int(hi)?, hi_percent: int(pct)? })
            }
            _ => Err(format!("unknown depth distribution '{kind}' (expected geo, uni or bi)")),
        }
    }

    /// Strictly simpler variants for the shrinker, shallowest first.
    pub fn shrink(&self) -> Vec<DepthDist> {
        match *self {
            DepthDist::Geometric { percent } if percent > 10 => {
                vec![DepthDist::Geometric { percent: percent / 2 }]
            }
            DepthDist::Uniform { lo, hi } if hi > lo => {
                vec![DepthDist::Uniform { lo, hi: lo + (hi - lo) / 2 }]
            }
            DepthDist::Bimodal { lo, hi, hi_percent } if hi > lo + 1 => {
                vec![DepthDist::Bimodal { lo, hi: lo + (hi - lo) / 2, hi_percent }]
            }
            DepthDist::Bimodal { lo, .. } => vec![DepthDist::Uniform { lo, hi: lo.max(1) }],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for DepthDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// A fully seeded synthetic workload: producer/consumer chains of
/// threads pushing a bounded byte payload through small cyclic streams,
/// descending a sampled call depth per work item. Every field is a pure
/// function of [`WorkloadSpec::from_seed`]'s seed, and the canonical
/// string round-trips through [`WorkloadSpec::parse`], so a spec can
/// ride inside a sweep job key and come back out of a quarantine
/// record's reproducer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Seed for every sampled quantity (step depths, payload bytes).
    pub seed: u64,
    /// Parallel producer/consumer chains (1..=2).
    pub chains: u8,
    /// Threads per chain — source, `stages - 2` relays, sink (2..=4).
    pub stages: u8,
    /// Bytes each source pushes through its chain.
    pub payload: u16,
    /// Capacity of every stream; small values force a block (and a
    /// context switch) every few bytes — the switch-pressure knob.
    pub capacity: u8,
    /// Per-work-item call-depth distribution.
    pub depth: DepthDist,
    /// Recursion bound: no work item descends deeper than this.
    pub max_depth: u8,
    /// Work items between pure-compute gap steps (burstiness: a source
    /// emits `burst` bytes back-to-back, then computes while the chain
    /// drains).
    pub burst: u8,
    /// Simulated cycles charged at the bottom of each descent.
    pub compute: u16,
}

impl WorkloadSpec {
    /// Derives a complete spec from one seed, splitmix64-style. The
    /// ranges keep scenarios tiny (≤ 8 threads, ≤ 40 payload bytes) so
    /// a fuzz sweep can afford thousands of them.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = |m: u64| splitmix64(&mut state) % m;
        let chains = 1 + next(2) as u8;
        let stages = 2 + next(3) as u8;
        let payload = 8 + next(33) as u16;
        let capacity = 1 + next(4) as u8;
        let max_depth = 2 + next(6) as u8;
        let depth = match next(3) {
            0 => DepthDist::Geometric { percent: 30 + next(41) as u8 },
            1 => {
                let lo = next(3) as u8;
                DepthDist::Uniform { lo, hi: lo + 1 + next(4) as u8 }
            }
            _ => DepthDist::Bimodal {
                lo: next(2) as u8,
                hi: 3 + next(5) as u8,
                hi_percent: 10 + next(31) as u8,
            },
        };
        let burst = 1 + next(7) as u8;
        let compute = 1 + next(24) as u16;
        WorkloadSpec { seed, chains, stages, payload, capacity, depth, max_depth, burst, compute }
    }

    /// Total thread count (`chains × stages`).
    pub fn threads(&self) -> usize {
        usize::from(self.chains) * usize::from(self.stages)
    }

    /// The canonical spec string (comma-separated `key=value`, the
    /// grammar EXPERIMENTS.md documents). Contains no `|`, `;` or
    /// whitespace, so it embeds cleanly in job-key canonicals and
    /// scenario reproducer strings.
    pub fn canonical(&self) -> String {
        format!(
            "seed={:#x},chains={},stages={},payload={},cap={},depth={},max={},burst={},compute={}",
            self.seed,
            self.chains,
            self.stages,
            self.payload,
            self.capacity,
            self.depth.canonical(),
            self.max_depth,
            self.burst,
            self.compute,
        )
    }

    /// Parses a canonical spec string ([`WorkloadSpec::canonical`]
    /// round-trips).
    ///
    /// # Errors
    ///
    /// Describes the first missing or malformed field.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = WorkloadSpec::from_seed(0);
        let mut saw_seed = false;
        for field in s.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("spec field '{field}' is not key=value"))?;
            let num = |v: &str| -> Result<u64, String> {
                let v = v.trim();
                if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    v.parse()
                }
                .map_err(|_| format!("spec value '{v}' is not an integer"))
            };
            match key.trim() {
                "seed" => {
                    spec = WorkloadSpec::from_seed(num(value)?);
                    saw_seed = true;
                }
                "chains" => spec.chains = num(value)? as u8,
                "stages" => spec.stages = num(value)? as u8,
                "payload" => spec.payload = num(value)? as u16,
                "cap" => spec.capacity = num(value)? as u8,
                "depth" => spec.depth = DepthDist::parse(value.trim())?,
                "max" => spec.max_depth = num(value)? as u8,
                "burst" => spec.burst = num(value)? as u8,
                "compute" => spec.compute = num(value)? as u16,
                other => return Err(format!("unknown spec field '{other}'")),
            }
        }
        if !saw_seed {
            return Err("spec has no seed= field".into());
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Rejects degenerate dimensions a synthesized workload cannot run
    /// with (hand-edited reproducer strings are the only way to reach
    /// them; [`WorkloadSpec::from_seed`] stays in range by
    /// construction).
    pub fn validate(&self) -> Result<(), String> {
        if self.chains == 0 || self.stages < 2 {
            return Err(format!(
                "spec needs at least 1 chain of 2 stages (chains={}, stages={})",
                self.chains, self.stages
            ));
        }
        if self.payload == 0 || self.capacity == 0 || self.burst == 0 {
            return Err("payload, cap and burst must be nonzero".into());
        }
        Ok(())
    }

    /// Strictly smaller candidate specs for the shrinker, most
    /// aggressive first: fewer threads, a shorter payload, a shallower
    /// stack, less compute. Every candidate validates.
    pub fn shrink_candidates(&self) -> Vec<WorkloadSpec> {
        let mut out = Vec::new();
        if self.chains > 1 {
            out.push(WorkloadSpec { chains: 1, ..*self });
        }
        if self.stages > 2 {
            out.push(WorkloadSpec { stages: self.stages - 1, ..*self });
        }
        if self.payload > 2 {
            out.push(WorkloadSpec { payload: self.payload / 2, ..*self });
        }
        if self.max_depth > 1 {
            out.push(WorkloadSpec { max_depth: self.max_depth / 2, ..*self });
        }
        for depth in self.depth.shrink() {
            out.push(WorkloadSpec { depth, ..*self });
        }
        if self.burst > 1 {
            out.push(WorkloadSpec { burst: 1, ..*self });
        }
        if self.compute > 1 {
            out.push(WorkloadSpec { compute: 1, ..*self });
        }
        out
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_seed_sensitive() {
        for seed in 0..200u64 {
            assert_eq!(WorkloadSpec::from_seed(seed), WorkloadSpec::from_seed(seed));
        }
        let distinct: std::collections::HashSet<String> =
            (0..200).map(|s| WorkloadSpec::from_seed(s).canonical()).collect();
        assert!(distinct.len() > 150, "seeds collapse: only {} distinct specs", distinct.len());
    }

    #[test]
    fn canonical_round_trips() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            let spec = WorkloadSpec::from_seed(seed);
            let parsed = WorkloadSpec::parse(&spec.canonical()).unwrap();
            assert_eq!(spec, parsed, "seed {seed:#x}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(WorkloadSpec::parse("").is_err());
        assert!(WorkloadSpec::parse("chains=2").is_err(), "seedless spec accepted");
        assert!(WorkloadSpec::parse("seed=1,bogus=3").is_err());
        assert!(WorkloadSpec::parse("seed=1,depth=tri:4").is_err());
        assert!(WorkloadSpec::parse("seed=1,chains=0").is_err());
        assert!(WorkloadSpec::parse("seed=1,payload=0").is_err());
    }

    #[test]
    fn depth_grammar_round_trips() {
        for d in [
            DepthDist::Geometric { percent: 40 },
            DepthDist::Uniform { lo: 1, hi: 5 },
            DepthDist::Bimodal { lo: 0, hi: 6, hi_percent: 25 },
        ] {
            assert_eq!(DepthDist::parse(&d.canonical()).unwrap(), d);
        }
    }

    #[test]
    fn samples_respect_the_recursion_bound() {
        let mut state = 99u64;
        for seed in 0..50u64 {
            let spec = WorkloadSpec::from_seed(seed);
            for _ in 0..100 {
                assert!(spec.depth.sample(&mut state, spec.max_depth) <= spec.max_depth);
            }
        }
    }

    #[test]
    fn shrink_candidates_are_valid_and_strictly_simpler() {
        for seed in 0..50u64 {
            let spec = WorkloadSpec::from_seed(seed);
            for cand in spec.shrink_candidates() {
                cand.validate().unwrap();
                assert_ne!(cand, spec);
            }
        }
    }
}
