//! # regwin-gen
//!
//! Seeded synthetic workloads and deterministic schedule fuzzing for
//! the regwin differential-oracle regression farm.
//!
//! Every experiment elsewhere in the workspace runs the paper's single
//! spell-checker workload. This crate manufactures *scenario
//! diversity* without giving up reproducibility:
//!
//! 1. **[`WorkloadSpec`]** — a splitmix64-seeded spec (producer/
//!    consumer chains, parameterised call-depth distributions with
//!    bounded recursion, bursty switch pressure) that
//!    [`Workload::synthesize`] turns into plain-data thread programs.
//!    The programs interpret through [`regwin_rt::Ctx`] — the same op
//!    stream the spell pipeline emits — so generated scenarios run
//!    unmodified through machine, rt and cluster under any scheduling
//!    policy × timing backend.
//! 2. **Schedule fuzzing** — a [`Scenario`] can name a fuzz seed,
//!    wrapping its policy in [`regwin_rt::Fuzzed`] for seeded,
//!    bounded, fully replayable ready-queue perturbations.
//! 3. **The invariant bundle** — [`run_bundle`] executes each
//!    scenario several independent ways (direct, trace replay, 1-PE
//!    cluster, masked-fault, injected-fault) and errors on the first
//!    divergence, carrying a canonical reproducer.
//! 4. **The shrinker** — [`shrink`] greedily minimizes a failing
//!    scenario (fewer threads, shorter payload, shallower stacks, no
//!    fuzzing) before it is reported.
//!
//! The `repro-fuzz` binary in `regwin-bench` sweeps a fixed seed set ×
//! policies × timing backends through the sweep engine and writes the
//! committed `BENCH_fuzz.json` census.
//!
//! ```rust
//! use regwin_gen::{run_bundle, Scenario, WorkloadSpec};
//!
//! let spec = WorkloadSpec::from_seed(42);
//! let report = run_bundle(&Scenario::new(spec)).expect("clean scenario");
//! assert!(report.stats.context_switches > 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod oracle;
mod shrink;
mod spec;
mod workload;

pub use oracle::{masked_plan, run_bundle, Scenario, FUZZ_BUDGET};
pub use shrink::{shrink, ShrinkOutcome};
pub use spec::{DepthDist, WorkloadSpec};
pub use workload::{Step, StepIo, StreamDef, ThreadProgram, Workload};
