//! Scenario shrinking: minimize a failing scenario before reporting.
//!
//! Greedy first-accept descent over [`WorkloadSpec::shrink_candidates`]
//! plus fuzz-perturbation removal: each round tries the candidates in
//! order (fewest-threads first) and restarts from the first one that
//! still fails the [invariant bundle](crate::run_bundle). Deterministic
//! — the same failing scenario always shrinks to the same minimum — and
//! bounded by an evaluation budget, since every probe is a full bundle
//! run.

use crate::oracle::{run_bundle, Scenario};

/// The outcome of shrinking one failing scenario.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest scenario found that still fails the bundle.
    pub scenario: Scenario,
    /// The failure the minimal scenario produces.
    pub detail: String,
    /// Greedy rounds taken.
    pub rounds: usize,
    /// Bundle evaluations spent (probes, successful or not).
    pub evaluations: usize,
}

/// Shrink candidates for a full scenario: every spec shrink, then the
/// fuzz knob (drop the schedule perturbations entirely — if the
/// failure survives, it was never a fuzzing artifact).
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = sc
        .spec
        .shrink_candidates()
        .into_iter()
        .map(|spec| Scenario { spec, ..sc.clone() })
        .collect();
    if sc.fuzz.is_some() {
        out.push(Scenario { fuzz: None, ..sc.clone() });
    }
    out
}

/// Minimizes `sc`, assuming it currently fails [`run_bundle`].
///
/// Returns `None` when `sc` does not fail (there is nothing to
/// shrink). Otherwise greedily descends until no candidate fails or
/// `max_evaluations` bundle runs have been spent, and returns the
/// smallest still-failing scenario — which by construction reproduces
/// a divergence, a property the regression tests pin down.
pub fn shrink(sc: &Scenario, max_evaluations: usize) -> Option<ShrinkOutcome> {
    let mut detail = run_bundle(sc).err()?.to_string();
    let mut current = sc.clone();
    let mut evaluations = 1;
    let mut rounds = 0;
    'outer: loop {
        rounds += 1;
        for cand in candidates(&current) {
            if evaluations >= max_evaluations {
                break 'outer;
            }
            evaluations += 1;
            if let Err(e) = run_bundle(&cand) {
                detail = e.to_string();
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    Some(ShrinkOutcome { scenario: current, detail, rounds, evaluations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use regwin_rt::{FaultKind, FaultPlan};

    #[test]
    fn passing_scenarios_do_not_shrink() {
        let sc = Scenario::new(WorkloadSpec::from_seed(1));
        assert!(shrink(&sc, 50).is_none());
    }

    #[test]
    fn shrunk_scenario_still_reproduces_the_divergence() {
        let mut sc = Scenario::new(WorkloadSpec::from_seed(4));
        sc.audit = true;
        sc.fuzz = Some(0xABCD);
        sc.fault = Some(FaultPlan::new().with_event(FaultKind::ResidentCorrupt, 2));
        let outcome = shrink(&sc, 60).expect("injected unmasked fault must fail the bundle");
        // The minimum still fails...
        assert!(run_bundle(&outcome.scenario).is_err());
        // ...and is genuinely smaller (or at worst equal, never bigger).
        let size = |s: &Scenario| {
            s.spec.threads() * usize::from(s.spec.payload) * usize::from(s.spec.max_depth)
        };
        assert!(size(&outcome.scenario) <= size(&sc));
        assert!(outcome.evaluations <= 60);
        assert!(!outcome.detail.is_empty());
    }
}
