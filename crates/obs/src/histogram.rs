//! A small power-of-two-bucketed histogram for latencies and depths.

use std::fmt;

/// Number of buckets: bucket `i` holds values whose bit length is `i`
/// (bucket 0 holds the value 0), so the full `u64` range is covered.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram: bucket `i` counts values in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros). Recording is O(1), the
/// memory footprint is fixed, and merging is element-wise addition —
/// the same commutativity that makes [`crate::MetricSet`] aggregation
/// order-independent.
///
/// Used for wall-clock latency and queue-depth distributions, which are
/// inherently nondeterministic and therefore reported *separately* from
/// the deterministic metric counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: [0; BUCKETS], total: 0, sum: 0, max: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(inclusive_lower_bound, count)` pairs in
    /// ascending order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                (lo, c)
            })
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.1} max={}", self.total, self.mean(), self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.buckets();
        // 0 → bucket 0; 1 → [1,2); 2,3 → [2,4); 4,7 → [4,8); 8 → [8,16);
        // 1024 → [1024,2048); MAX → top bucket.
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (1, 1));
        assert_eq!(buckets[2], (2, 2));
        assert_eq!(buckets[3], (4, 2));
        assert_eq!(buckets[4], (8, 1));
        assert_eq!(buckets[5], (1024, 1));
        assert_eq!(buckets[6], (1 << 63, 1));
    }

    #[test]
    fn merge_adds_counts_and_tracks_extrema() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(100);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 106);
        assert_eq!(a.max(), 100);
        assert!((a.mean() - 106.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.buckets().is_empty());
        assert!(!h.to_string().is_empty());
    }
}
