//! The `Probe` trait and its built-in sinks.

use crate::metric::{Metric, MetricSet};
use std::fmt;
use std::sync::Mutex;

/// The level of the span hierarchy an event belongs to. Spans nest
/// `Job → Simulation → Trap`; `Switch` spans are siblings of `Trap`
/// inside a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One sweep job (a single (behaviour, scheme, windows) cell).
    Job,
    /// One simulation run inside a job.
    Simulation,
    /// One window trap (overflow or underflow) handled by a scheme.
    Trap,
    /// One context switch performed by the scheduler.
    Switch,
    /// One window-state audit pass (integrity verification and repair)
    /// run by the machine's window auditor.
    Audit,
}

impl SpanKind {
    /// The span kind's stable lowercase name, used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Job => "job",
            SpanKind::Simulation => "simulation",
            SpanKind::Trap => "trap",
            SpanKind::Switch => "switch",
            SpanKind::Audit => "audit",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One instrumentation event, passed by reference so emitting costs
/// nothing beyond the values it carries. Names are borrowed to keep the
/// hot path allocation-free; sinks that retain events own-copy them
/// (see [`OwnedProbeEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent<'a> {
    /// A span opened (e.g. a trap handler was entered).
    SpanStart {
        /// The span's level in the hierarchy.
        kind: SpanKind,
        /// The span's name (e.g. `"overflow"`, a job key).
        name: &'a str,
    },
    /// A span closed, with the simulated cycles it covered.
    SpanEnd {
        /// The span's level in the hierarchy.
        kind: SpanKind,
        /// The span's name, matching its `SpanStart`.
        name: &'a str,
        /// Simulated cycles elapsed inside the span (0 where the layer
        /// has no cycle notion, e.g. sweep jobs).
        cycles: u64,
    },
    /// A typed counter increment.
    Counter {
        /// Which counter.
        metric: Metric,
        /// How much to add.
        delta: u64,
    },
    /// An instantaneous level sample (e.g. ready-queue depth at
    /// dispatch).
    Gauge {
        /// The gauge's name.
        name: &'a str,
        /// The sampled value.
        value: u64,
    },
}

/// An owned copy of a [`ProbeEvent`], for sinks that retain events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwnedProbeEvent {
    /// See [`ProbeEvent::SpanStart`].
    SpanStart {
        /// The span's level in the hierarchy.
        kind: SpanKind,
        /// The span's name.
        name: String,
    },
    /// See [`ProbeEvent::SpanEnd`].
    SpanEnd {
        /// The span's level in the hierarchy.
        kind: SpanKind,
        /// The span's name.
        name: String,
        /// Simulated cycles elapsed inside the span.
        cycles: u64,
    },
    /// See [`ProbeEvent::Counter`].
    Counter {
        /// Which counter.
        metric: Metric,
        /// How much was added.
        delta: u64,
    },
    /// See [`ProbeEvent::Gauge`].
    Gauge {
        /// The gauge's name.
        name: String,
        /// The sampled value.
        value: u64,
    },
}

impl From<&ProbeEvent<'_>> for OwnedProbeEvent {
    fn from(ev: &ProbeEvent<'_>) -> Self {
        match *ev {
            ProbeEvent::SpanStart { kind, name } => {
                OwnedProbeEvent::SpanStart { kind, name: name.to_string() }
            }
            ProbeEvent::SpanEnd { kind, name, cycles } => {
                OwnedProbeEvent::SpanEnd { kind, name: name.to_string(), cycles }
            }
            ProbeEvent::Counter { metric, delta } => OwnedProbeEvent::Counter { metric, delta },
            ProbeEvent::Gauge { name, value } => {
                OwnedProbeEvent::Gauge { name: name.to_string(), value }
            }
        }
    }
}

/// A sink for instrumentation events.
///
/// Probes are shared across threads behind an `Arc` and record through
/// `&self` (interior mutability): the machine, the runtime and the
/// sweep engine all forward to the same instance. Implementations must
/// be cheap — `record` is called on the simulation hot path when a
/// probe is installed.
pub trait Probe: Send + Sync + fmt::Debug {
    /// Consumes one event.
    fn record(&self, event: &ProbeEvent<'_>);

    /// Whether this probe actually observes anything. Instrumented code
    /// may skip building expensive event payloads when `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The zero-cost default probe: drops every event.
///
/// Instrumented layers hold `Option<Arc<dyn Probe>>` defaulting to
/// `None`, so the usual configuration never even reaches this type; it
/// exists for call sites that require *some* probe value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    fn record(&self, _event: &ProbeEvent<'_>) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// An in-memory event log: retains every event in arrival order.
/// Intended for tests and diagnostics, not for full-scale sweeps.
#[derive(Debug, Default)]
pub struct RecordingProbe {
    events: Mutex<Vec<OwnedProbeEvent>>,
}

impl RecordingProbe {
    /// An empty recording probe.
    pub fn new() -> Self {
        RecordingProbe::default()
    }

    /// A copy of every event recorded so far.
    pub fn events(&self) -> Vec<OwnedProbeEvent> {
        self.events.lock().expect("probe log poisoned").clone()
    }

    /// The summed deltas recorded for `metric`.
    pub fn counter_total(&self, metric: Metric) -> u64 {
        self.events
            .lock()
            .expect("probe log poisoned")
            .iter()
            .map(|e| match e {
                OwnedProbeEvent::Counter { metric: m, delta } if *m == metric => *delta,
                _ => 0,
            })
            .sum()
    }

    /// How many spans of `kind` were closed.
    pub fn span_count(&self, kind: SpanKind) -> usize {
        self.events
            .lock()
            .expect("probe log poisoned")
            .iter()
            .filter(|e| matches!(e, OwnedProbeEvent::SpanEnd { kind: k, .. } if *k == kind))
            .count()
    }
}

impl Probe for RecordingProbe {
    fn record(&self, event: &ProbeEvent<'_>) {
        self.events.lock().expect("probe log poisoned").push(event.into());
    }
}

/// A thread-safe counter aggregator: folds every [`ProbeEvent::Counter`]
/// into a [`MetricSet`] and ignores spans and gauges. The cheap
/// always-on sink for live runs.
#[derive(Debug, Default)]
pub struct MetricProbe {
    set: Mutex<MetricSet>,
}

impl MetricProbe {
    /// An empty aggregator.
    pub fn new() -> Self {
        MetricProbe::default()
    }

    /// A copy of the current totals.
    pub fn snapshot(&self) -> MetricSet {
        self.set.lock().expect("metric set poisoned").clone()
    }
}

impl Probe for MetricProbe {
    fn record(&self, event: &ProbeEvent<'_>) {
        if let ProbeEvent::Counter { metric, delta } = event {
            self.set.lock().expect("metric set poisoned").add(*metric, *delta);
        }
    }
}

/// A forwarding sink: renders each event to one deterministic JSONL
/// line (via [`crate::jsonl::Row`]) and hands it to a caller-supplied
/// closure — a socket writer, a log file, a channel.
///
/// This is the streaming half of sweep-as-a-service: the daemon
/// installs a `StreamProbe` whose sink writes `event` frames to the
/// client connection, so a thin client watches job progress live. The
/// sink is called under a mutex, so a slow consumer (a full socket
/// buffer) back-pressures the emitting workers instead of growing an
/// unbounded queue.
///
/// By default only [`SpanKind::Job`] spans are forwarded — per-trap and
/// per-switch events fire on the simulation hot path and would swamp
/// any socket; use [`StreamProbe::all_events`] for local diagnostics.
pub struct StreamProbe {
    sink: Mutex<StreamSink>,
    jobs_only: bool,
}

/// The boxed consumer a [`StreamProbe`] forwards rendered lines to.
type StreamSink = Box<dyn FnMut(&str) + Send>;

impl fmt::Debug for StreamProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamProbe").field("jobs_only", &self.jobs_only).finish_non_exhaustive()
    }
}

impl StreamProbe {
    /// A probe forwarding only job-level span events to `sink` (the
    /// right setting for streaming over a socket).
    pub fn new(sink: impl FnMut(&str) + Send + 'static) -> Self {
        StreamProbe { sink: Mutex::new(Box::new(sink)), jobs_only: true }
    }

    /// A probe forwarding *every* event to `sink`. The hot-path volume
    /// is enormous; intended for tests and local diagnostics only.
    pub fn all_events(sink: impl FnMut(&str) + Send + 'static) -> Self {
        StreamProbe { sink: Mutex::new(Box::new(sink)), jobs_only: false }
    }

    /// Renders one event as a deterministic JSONL line (no newline).
    pub fn render(event: &ProbeEvent<'_>) -> String {
        match *event {
            ProbeEvent::SpanStart { kind, name } => crate::jsonl::Row::new()
                .str("ev", "start")
                .str("kind", kind.name())
                .str("name", name)
                .finish(),
            ProbeEvent::SpanEnd { kind, name, cycles } => crate::jsonl::Row::new()
                .str("ev", "end")
                .str("kind", kind.name())
                .str("name", name)
                .int("cycles", cycles)
                .finish(),
            ProbeEvent::Counter { metric, delta } => crate::jsonl::Row::new()
                .str("ev", "counter")
                .str("metric", metric.name())
                .int("delta", delta)
                .finish(),
            ProbeEvent::Gauge { name, value } => crate::jsonl::Row::new()
                .str("ev", "gauge")
                .str("name", name)
                .int("value", value)
                .finish(),
        }
    }
}

impl Probe for StreamProbe {
    fn record(&self, event: &ProbeEvent<'_>) {
        if self.jobs_only
            && !matches!(
                event,
                ProbeEvent::SpanStart { kind: SpanKind::Job, .. }
                    | ProbeEvent::SpanEnd { kind: SpanKind::Job, .. }
            )
        {
            return;
        }
        let line = Self::render(event);
        (self.sink.lock().unwrap_or_else(|e| e.into_inner()))(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_probe_is_disabled_and_silent() {
        let p = NoopProbe;
        assert!(!p.enabled());
        p.record(&ProbeEvent::Counter { metric: Metric::SavesExecuted, delta: 1 });
    }

    #[test]
    fn recording_probe_retains_events_in_order() {
        let p = RecordingProbe::new();
        p.record(&ProbeEvent::SpanStart { kind: SpanKind::Trap, name: "overflow" });
        p.record(&ProbeEvent::Counter { metric: Metric::OverflowTraps, delta: 1 });
        p.record(&ProbeEvent::SpanEnd { kind: SpanKind::Trap, name: "overflow", cycles: 93 });
        p.record(&ProbeEvent::Gauge { name: "ready_queue_depth", value: 3 });
        let events = p.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[0],
            OwnedProbeEvent::SpanStart { kind: SpanKind::Trap, name: "overflow".into() }
        );
        assert_eq!(p.counter_total(Metric::OverflowTraps), 1);
        assert_eq!(p.span_count(SpanKind::Trap), 1);
        assert!(p.enabled());
    }

    #[test]
    fn metric_probe_aggregates_counters_only() {
        let p = MetricProbe::new();
        p.record(&ProbeEvent::Counter { metric: Metric::CyclesApp, delta: 10 });
        p.record(&ProbeEvent::Counter { metric: Metric::CyclesApp, delta: 5 });
        p.record(&ProbeEvent::SpanEnd { kind: SpanKind::Simulation, name: "x", cycles: 99 });
        let snap = p.snapshot();
        assert_eq!(snap.get(Metric::CyclesApp), 15);
        assert_eq!(snap.iter_nonzero().count(), 1);
    }

    #[test]
    fn stream_probe_forwards_job_spans_as_jsonl_lines() {
        let lines = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let lines = std::sync::Arc::clone(&lines);
            move |line: &str| lines.lock().unwrap().push(line.to_string())
        };
        let p = StreamProbe::new(sink);
        p.record(&ProbeEvent::SpanStart { kind: SpanKind::Job, name: "SP FIFO w=8" });
        p.record(&ProbeEvent::Counter { metric: Metric::Dispatches, delta: 7 });
        p.record(&ProbeEvent::SpanEnd { kind: SpanKind::Trap, name: "overflow", cycles: 93 });
        p.record(&ProbeEvent::SpanEnd { kind: SpanKind::Job, name: "SP FIFO w=8", cycles: 0 });
        assert_eq!(
            *lines.lock().unwrap(),
            vec![
                r#"{"ev":"start","kind":"job","name":"SP FIFO w=8"}"#.to_string(),
                r#"{"ev":"end","kind":"job","name":"SP FIFO w=8","cycles":0}"#.to_string(),
            ],
            "only job spans pass the socket filter"
        );
    }

    #[test]
    fn stream_probe_all_events_renders_every_variant() {
        let lines = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let lines = std::sync::Arc::clone(&lines);
            move |line: &str| lines.lock().unwrap().push(line.to_string())
        };
        let p = StreamProbe::all_events(sink);
        p.record(&ProbeEvent::Counter { metric: Metric::Dispatches, delta: 7 });
        p.record(&ProbeEvent::Gauge { name: "ready_queue_depth", value: 3 });
        assert_eq!(
            *lines.lock().unwrap(),
            vec![
                r#"{"ev":"counter","metric":"dispatches","delta":7}"#.to_string(),
                r#"{"ev":"gauge","name":"ready_queue_depth","value":3}"#.to_string(),
            ]
        );
    }

    #[test]
    fn probes_are_object_safe_and_shareable() {
        let inner = std::sync::Arc::new(MetricProbe::new());
        let probe: std::sync::Arc<dyn Probe> = inner.clone();
        let clones: Vec<_> = (0..4).map(|_| std::sync::Arc::clone(&probe)).collect();
        std::thread::scope(|s| {
            for p in &clones {
                s.spawn(move || {
                    for _ in 0..100 {
                        p.record(&ProbeEvent::Counter { metric: Metric::Dispatches, delta: 1 });
                    }
                });
            }
        });
        assert_eq!(inner.snapshot().get(Metric::Dispatches), 400);
    }
}
