//! Deterministic JSONL row encoding for trace output.
//!
//! The sweep engine writes one JSON object per line. Determinism
//! requirements rule out floats (formatting is platform-dependent in
//! edge cases) and unordered maps, so [`Row`] only accepts strings and
//! unsigned integers, and emits fields in insertion order.

/// Builder for one JSON object line. Fields appear in the order they
/// were added; values are limited to strings and `u64` so the encoding
/// is byte-deterministic.
///
/// ```rust
/// use regwin_obs::jsonl::Row;
///
/// let line = Row::new().str("kind", "trap").int("cycles", 93).finish();
/// assert_eq!(line, r#"{"kind":"trap","cycles":93}"#);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Row {
    buf: String,
}

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Row { buf: String::from("{") }
    }

    fn sep(&mut self) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
    }

    fn key(&mut self, name: &str) {
        self.sep();
        push_json_string(&mut self.buf, name);
        self.buf.push(':');
    }

    /// Appends a string field.
    pub fn str(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        push_json_string(&mut self.buf, value);
        self
    }

    /// Appends an unsigned integer field.
    pub fn int(mut self, name: &str, value: u64) -> Self {
        self.key(name);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a pre-encoded JSON value verbatim. The caller is
    /// responsible for `value` being valid, deterministic JSON.
    pub fn raw(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the encoded line (no trailing
    /// newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Appends `s` to `out` as a JSON string literal with the mandatory
/// escapes (quote, backslash, control characters).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_keep_insertion_order() {
        let line = Row::new().str("b", "x").int("a", 1).finish();
        assert_eq!(line, r#"{"b":"x","a":1}"#);
    }

    #[test]
    fn empty_row_is_an_empty_object() {
        assert_eq!(Row::new().finish(), "{}");
    }

    #[test]
    fn strings_are_escaped() {
        let line = Row::new().str("s", "a\"b\\c\nd\te\u{1}").finish();
        assert_eq!(line, "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
    }

    #[test]
    fn raw_embeds_verbatim() {
        let inner = Row::new().int("n", 2).finish();
        let line = Row::new().raw("obj", &inner).raw("arr", "[1,2]").finish();
        assert_eq!(line, r#"{"obj":{"n":2},"arr":[1,2]}"#);
    }

    #[test]
    fn large_ints_are_exact() {
        let line = Row::new().int("v", u64::MAX).finish();
        assert_eq!(line, format!(r#"{{"v":{}}}"#, u64::MAX));
    }
}
