//! # regwin-obs
//!
//! The unified observability layer of the regwin workspace: one
//! [`Probe`] trait through which every layer — the window machine, the
//! trap schemes, the runtime scheduler and the sweep engine — reports
//! what it is doing, instead of each layer inventing its own counting
//! API.
//!
//! The design has three pieces:
//!
//! * **Events** ([`ProbeEvent`]): hierarchical spans
//!   (`job → simulation → trap`, [`SpanKind`]), typed counter
//!   increments ([`Metric`]) and gauges (e.g. ready-queue depth).
//!   Instrumented code emits events through an optional
//!   `Arc<dyn Probe>`; with no probe installed the only cost on the
//!   hot path is one `Option` branch.
//! * **Counters** ([`Metric`], [`MetricSet`]): a closed set of typed
//!   counters with a fixed, deterministic iteration order, so two
//!   aggregations of the same run serialize byte-identically no matter
//!   the thread interleaving that produced them.
//! * **Sinks**: [`NoopProbe`] (the zero-cost default),
//!   [`RecordingProbe`] (an in-memory event log for tests and
//!   diagnostics) and [`MetricProbe`] (a thread-safe aggregator
//!   producing a [`MetricSet`] snapshot). Deterministic JSONL rows for
//!   trace files are built with [`jsonl::Row`].
//!
//! This crate is dependency-free and sits below every other regwin
//! crate.
//!
//! ```rust
//! use regwin_obs::{Metric, MetricProbe, Probe, ProbeEvent};
//! use std::sync::Arc;
//!
//! let probe = Arc::new(MetricProbe::new());
//! probe.record(&ProbeEvent::Counter { metric: Metric::SavesExecuted, delta: 2 });
//! probe.record(&ProbeEvent::Counter { metric: Metric::SavesExecuted, delta: 1 });
//! assert_eq!(probe.snapshot().get(Metric::SavesExecuted), 3);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod histogram;
pub mod jsonl;
mod metric;
mod probe;

pub use histogram::Histogram;
pub use metric::{AtomicMetricSet, Metric, MetricSet};
pub use probe::{
    MetricProbe, NoopProbe, OwnedProbeEvent, Probe, ProbeEvent, RecordingProbe, SpanKind,
    StreamProbe,
};
