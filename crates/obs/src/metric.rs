//! Typed counters and the deterministic counter set.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The closed set of counters the workspace reports. Each layer owns a
/// contiguous slice of the namespace: window-machine events, cycle
/// attribution by category (the paper's §6 breakdown), runtime
/// scheduling events, and sweep-engine job lifecycle events.
///
/// The variant order is the canonical serialization order: everything
/// that iterates a [`MetricSet`] walks [`Metric::ALL`], so aggregated
/// output is byte-stable across thread interleavings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// Completed `save` instructions (including after overflow handling).
    SavesExecuted,
    /// Completed `restore` instructions.
    RestoresExecuted,
    /// Overflow traps taken.
    OverflowTraps,
    /// Underflow traps taken.
    UnderflowTraps,
    /// Windows spilled to memory by overflow trap handlers.
    OverflowSpills,
    /// Windows restored from memory by underflow trap handlers.
    UnderflowRestores,
    /// Bytes of register state spilled to memory (16 registers × 8
    /// bytes per window), across trap and switch transfers alike.
    SpillBytes,
    /// Bytes of register state filled back from memory.
    FillBytes,
    /// Windows flushed by whole-thread flushes (NS scheme and the §4.4
    /// switch-time flush).
    WindowsFlushed,
    /// Context switches performed.
    ContextSwitches,
    /// Windows saved during context switches.
    SwitchSaves,
    /// Windows restored during context switches.
    SwitchRestores,
    /// Cycles of application compute (the workload's own work).
    CyclesApp,
    /// Cycles of non-trapping `save`/`restore` instructions.
    CyclesWindowInstr,
    /// Cycles spent in overflow trap handlers.
    CyclesOverflowTrap,
    /// Cycles spent in underflow trap handlers.
    CyclesUnderflowTrap,
    /// Cycles spent context switching.
    CyclesContextSwitch,
    /// Scheduler dispatches (one per context switch decision).
    Dispatches,
    /// Times a thread blocked on an empty input stream.
    StreamWaitsRead,
    /// Times a thread blocked on a full output stream (or its record
    /// lock).
    StreamWaitsWrite,
    /// Stream bytes successfully read.
    StreamBytesRead,
    /// Stream bytes successfully written.
    StreamBytesWritten,
    /// Sweep jobs served from the result cache.
    CacheHits,
    /// Sweep jobs actually simulated.
    CacheMisses,
    /// Retry attempts after a failed sweep-job attempt.
    JobRetries,
    /// Sweep jobs quarantined after exhausting every attempt.
    JobsQuarantined,
    /// Corrupted-but-clean windows repaired by the window auditor from
    /// the backing stack.
    WindowRepairs,
    /// Simulated threads quarantined by the runtime after unrecoverable
    /// window corruption.
    ThreadsQuarantined,
    /// Timed-out job attempts whose detached worker thread was
    /// abandoned (left running, never joined).
    AbandonedThreads,
    /// Shared-bus transactions granted to a PE (cluster runs only).
    BusGrants,
    /// Cycles a PE lost to the shared bus: arbitration contention on
    /// the sending side plus idle waiting for a delivery on the
    /// receiving side (cluster runs only).
    BusStallCycles,
    /// Cross-PE message payload bytes delivered over the shared bus
    /// (cluster runs only).
    CrossPeMessages,
    /// Pipeline stall cycles from window-register scoreboard hazards
    /// and load/store-queue backpressure (pipeline timing backend only).
    HazardStallCycles,
    /// Cumulative cycles window transfers spent resident in the
    /// load/store queue (pipeline timing backend only).
    LsqOccupancyTicks,
}

impl Metric {
    /// Every metric, in canonical serialization order.
    pub const ALL: [Metric; 34] = [
        Metric::SavesExecuted,
        Metric::RestoresExecuted,
        Metric::OverflowTraps,
        Metric::UnderflowTraps,
        Metric::OverflowSpills,
        Metric::UnderflowRestores,
        Metric::SpillBytes,
        Metric::FillBytes,
        Metric::WindowsFlushed,
        Metric::ContextSwitches,
        Metric::SwitchSaves,
        Metric::SwitchRestores,
        Metric::CyclesApp,
        Metric::CyclesWindowInstr,
        Metric::CyclesOverflowTrap,
        Metric::CyclesUnderflowTrap,
        Metric::CyclesContextSwitch,
        Metric::Dispatches,
        Metric::StreamWaitsRead,
        Metric::StreamWaitsWrite,
        Metric::StreamBytesRead,
        Metric::StreamBytesWritten,
        Metric::CacheHits,
        Metric::CacheMisses,
        Metric::JobRetries,
        Metric::JobsQuarantined,
        Metric::WindowRepairs,
        Metric::ThreadsQuarantined,
        Metric::AbandonedThreads,
        Metric::BusGrants,
        Metric::BusStallCycles,
        Metric::CrossPeMessages,
        Metric::HazardStallCycles,
        Metric::LsqOccupancyTicks,
    ];

    /// The metric's stable snake_case name, used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Metric::SavesExecuted => "saves_executed",
            Metric::RestoresExecuted => "restores_executed",
            Metric::OverflowTraps => "overflow_traps",
            Metric::UnderflowTraps => "underflow_traps",
            Metric::OverflowSpills => "overflow_spills",
            Metric::UnderflowRestores => "underflow_restores",
            Metric::SpillBytes => "spill_bytes",
            Metric::FillBytes => "fill_bytes",
            Metric::WindowsFlushed => "windows_flushed",
            Metric::ContextSwitches => "context_switches",
            Metric::SwitchSaves => "switch_saves",
            Metric::SwitchRestores => "switch_restores",
            Metric::CyclesApp => "cycles_app",
            Metric::CyclesWindowInstr => "cycles_window_instr",
            Metric::CyclesOverflowTrap => "cycles_overflow_trap",
            Metric::CyclesUnderflowTrap => "cycles_underflow_trap",
            Metric::CyclesContextSwitch => "cycles_context_switch",
            Metric::Dispatches => "dispatches",
            Metric::StreamWaitsRead => "stream_waits_read",
            Metric::StreamWaitsWrite => "stream_waits_write",
            Metric::StreamBytesRead => "stream_bytes_read",
            Metric::StreamBytesWritten => "stream_bytes_written",
            Metric::CacheHits => "cache_hits",
            Metric::CacheMisses => "cache_misses",
            Metric::JobRetries => "job_retries",
            Metric::JobsQuarantined => "jobs_quarantined",
            Metric::WindowRepairs => "window_repairs",
            Metric::ThreadsQuarantined => "threads_quarantined",
            Metric::AbandonedThreads => "abandoned_threads",
            Metric::BusGrants => "bus_grants",
            Metric::BusStallCycles => "bus_stall_cycles",
            Metric::CrossPeMessages => "cross_pe_messages",
            Metric::HazardStallCycles => "hazard_stall_cycles",
            Metric::LsqOccupancyTicks => "lsq_occupancy_ticks",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fixed-size set of counter totals, one slot per [`Metric`].
///
/// Addition is commutative, so merging per-job sets in any completion
/// order yields the same totals — the property the sweep engine's
/// determinism guarantees rest on. Iteration always follows
/// [`Metric::ALL`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSet {
    counts: [u64; Metric::ALL.len()],
}

// Derived `Default` requires `[u64; N]: Default`, which the standard
// library only provides for N ≤ 32.
impl Default for MetricSet {
    fn default() -> Self {
        MetricSet { counts: [0; Metric::ALL.len()] }
    }
}

impl MetricSet {
    /// An all-zero set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Adds `delta` to `metric` (saturating).
    pub fn add(&mut self, metric: Metric, delta: u64) {
        let slot = &mut self.counts[metric.index()];
        *slot = slot.saturating_add(delta);
    }

    /// The total for `metric`.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counts[metric.index()]
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &MetricSet) {
        for m in Metric::ALL {
            self.add(m, other.get(m));
        }
    }

    /// Whether every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Iterates `(metric, total)` pairs in canonical order, skipping
    /// zero counters.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Metric, u64)> + '_ {
        Metric::ALL.iter().filter_map(|&m| {
            let v = self.get(m);
            (v != 0).then_some((m, v))
        })
    }
}

/// A wait-free counter row: one relaxed atomic per [`Metric`].
///
/// The building block of (1,N) single-writer/many-reader publication —
/// give each writing thread its own row and have readers sum a
/// [`AtomicMetricSet::snapshot`] of every row at report time. `add` is
/// a single relaxed `fetch_add`: no CAS loop, no mutex, no poisoning.
/// Relaxed ordering is sufficient because each counter is an
/// independent monotone sum; a snapshot taken while writers are active
/// is a valid (if momentarily stale) lower bound, and exact once the
/// writer has been joined.
#[derive(Debug)]
pub struct AtomicMetricSet {
    counts: [AtomicU64; Metric::ALL.len()],
}

impl Default for AtomicMetricSet {
    fn default() -> Self {
        AtomicMetricSet { counts: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl AtomicMetricSet {
    /// An all-zero row.
    pub fn new() -> Self {
        AtomicMetricSet::default()
    }

    /// Adds `delta` to `metric` (wait-free, wrapping on overflow).
    pub fn add(&self, metric: Metric, delta: u64) {
        self.counts[metric.index()].fetch_add(delta, Ordering::Relaxed);
    }

    /// The current total for `metric`.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counts[metric.index()].load(Ordering::Relaxed)
    }

    /// A plain [`MetricSet`] copy of the current totals.
    pub fn snapshot(&self) -> MetricSet {
        let mut set = MetricSet::new();
        for m in Metric::ALL {
            let v = self.get(m);
            if v != 0 {
                set.add(m, v);
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_set_accumulates_and_snapshots() {
        let row = AtomicMetricSet::new();
        row.add(Metric::SavesExecuted, 2);
        row.add(Metric::SavesExecuted, 3);
        row.add(Metric::CacheHits, 1);
        assert_eq!(row.get(Metric::SavesExecuted), 5);
        let snap = row.snapshot();
        assert_eq!(snap.get(Metric::SavesExecuted), 5);
        assert_eq!(snap.get(Metric::CacheHits), 1);
        assert_eq!(snap.get(Metric::RestoresExecuted), 0);
    }

    #[test]
    fn all_covers_every_variant_in_order() {
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i, "{m} out of order in ALL");
        }
    }

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for m in Metric::ALL {
            assert!(seen.insert(m.name()), "duplicate name {}", m.name());
            assert!(m.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = MetricSet::new();
        a.add(Metric::SavesExecuted, 3);
        a.add(Metric::CyclesApp, 100);
        let mut b = MetricSet::new();
        b.add(Metric::SavesExecuted, 4);
        b.add(Metric::OverflowTraps, 1);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(Metric::SavesExecuted), 7);
    }

    #[test]
    fn iter_nonzero_skips_zeros_and_keeps_order() {
        let mut s = MetricSet::new();
        s.add(Metric::CyclesApp, 5);
        s.add(Metric::SavesExecuted, 1);
        let items: Vec<_> = s.iter_nonzero().collect();
        assert_eq!(items, vec![(Metric::SavesExecuted, 1), (Metric::CyclesApp, 5)]);
        assert!(!s.is_empty());
        assert!(MetricSet::new().is_empty());
    }

    #[test]
    fn add_saturates() {
        let mut s = MetricSet::new();
        s.add(Metric::SpillBytes, u64::MAX);
        s.add(Metric::SpillBytes, 10);
        assert_eq!(s.get(Metric::SpillBytes), u64::MAX);
    }
}
