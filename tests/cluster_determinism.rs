//! Workspace-level cluster determinism suite: the 1-PE serialized
//! differential oracle and sweep-artifact byte identity across worker
//! counts — the properties that make `BENCH_cluster.json` committable.

use regwin::prelude::*;
use regwin_cluster::run_spell_cluster;
use regwin_sweep::{report_to_json, Job, JobKey};
use std::path::PathBuf;

fn cluster_key(pes: usize) -> JobKey {
    let spell = SpellConfig::small();
    JobKey {
        experiment: format!("cluster-test:pes={pes}"),
        corpus: spell.corpus,
        m: spell.m,
        n: spell.n,
        policy: spell.policy,
        scheme: "SP".to_string(),
        nwindows: 8,
        timing: spell.timing,
        gen: None,
        fuzz: None,
    }
}

fn cluster_jobs(pe_counts: &[usize]) -> Vec<Job> {
    pe_counts
        .iter()
        .map(|&p| {
            let cfg = ClusterConfig::homogeneous(p, SchemeKind::Sp, 8, SpellConfig::small());
            Job::new(cluster_key(p), move || {
                run_spell_cluster(&cfg, None).map(|o| o.report.merged())
            })
        })
        .collect()
}

#[test]
fn one_pe_cluster_serializes_byte_identically_to_the_legacy_report() {
    let cfg = ClusterConfig::homogeneous(1, SchemeKind::Sp, 8, SpellConfig::small());
    let cluster = run_spell_cluster(&cfg, None).expect("1-PE cluster");
    let legacy =
        SpellPipeline::new(SpellConfig::small()).run(8, SchemeKind::Sp).expect("legacy run");
    // Not just PartialEq: the *serialized* reports are byte-identical,
    // so a 1-PE cluster cell and a legacy cell share cache entries and
    // artifacts bit for bit.
    assert_eq!(report_to_json(&cluster.report.merged()), report_to_json(&legacy.report));
}

#[test]
fn cluster_sweep_artifacts_are_byte_identical_across_worker_counts() {
    let tmp = std::env::temp_dir().join(format!("regwin-cluster-det-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("tmp dir");
    // Journaled engines promise deterministic artifacts (wall times
    // zeroed, job log in canonical key order); no cache, so both
    // worker counts execute every job.
    let runs: Vec<(String, String)> = [1usize, 8]
        .iter()
        .map(|&workers| {
            let journal: PathBuf = tmp.join(format!("w{workers}.journal.jsonl"));
            let engine = SweepEngine::with_config(
                SweepConfig::builder()
                    .workers(workers)
                    .journal(journal)
                    .build()
                    .expect("sweep config"),
            );
            let jobs = cluster_jobs(&[1, 2, 4]);
            let results = engine.run_jobs(&jobs);
            assert!(results.iter().all(Option::is_some), "no job may quarantine");
            (engine.artifact_value().to_json(), engine.trace_string())
        })
        .collect();
    assert_eq!(runs[0].0, runs[1].0, "1 vs 8 sweep workers must agree byte-for-byte");
    assert_eq!(runs[0].1, runs[1].1, "the JSONL job trace must agree byte-for-byte");
    let _ = std::fs::remove_dir_all(tmp);
}

#[test]
fn cluster_reports_round_trip_through_the_cache_serializer() {
    let cfg = ClusterConfig::homogeneous(4, SchemeKind::Sp, 8, SpellConfig::small());
    let merged = run_spell_cluster(&cfg, None).expect("4-PE cluster").report.merged();
    assert!(merged.bus.is_some(), "multi-PE merged report carries the bus section");
    let json = report_to_json(&merged);
    let back = regwin_sweep::report_from_json(&json).expect("decode");
    assert_eq!(back, merged);
    assert_eq!(report_to_json(&back), json);
}
