//! Public-API surface snapshot.
//!
//! Scans every workspace crate's `src/` tree for `pub` declarations and
//! compares the sorted listing against the committed snapshot at
//! `tests/public_api.txt`. An accidental API change (a renamed type, a
//! dropped re-export, a function made public by mistake) fails this
//! test with a diff; an intentional change is blessed by re-running
//! with `REGWIN_BLESS=1` and committing the updated snapshot.
//!
//! The scan is textual, not semantic (no `cargo public-api` offline):
//! it records the first line of every declaration whose visibility is
//! exactly `pub` — `pub(crate)`/`pub(super)` items are internal and
//! ignored — and stops at each file's `#[cfg(test)]` module, which by
//! workspace convention is the last item in a file.

use std::fs;
use std::path::{Path, PathBuf};

const SNAPSHOT: &str = "tests/public_api.txt";

const DECL_KEYWORDS: [&str; 9] =
    ["fn ", "struct ", "enum ", "trait ", "mod ", "use ", "const ", "type ", "static "];

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = match fs::read_dir(dir) {
        Ok(rd) => rd.filter_map(Result::ok).map(|e| e.path()).collect(),
        Err(_) => return,
    };
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The declaration fragment of a `pub` line, or `None` if the line is
/// not a surface-relevant public declaration.
fn public_decl(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix("pub ")?;
    if !DECL_KEYWORDS.iter().any(|k| rest.starts_with(k)) {
        return None;
    }
    // Keep only the declaration head: strip a trailing body opener or
    // multi-line argument list so rustfmt churn cannot move the
    // snapshot.
    let mut head = trimmed.trim_end();
    head = head.strip_suffix('{').unwrap_or(head).trim_end();
    head = head.strip_suffix('(').unwrap_or(head).trim_end();
    Some(head.to_string())
}

fn surface() -> String {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut roots: Vec<(String, PathBuf)> = vec![("regwin".into(), root.join("src"))];
    let mut crate_dirs: Vec<_> = fs::read_dir(root.join("crates"))
        .expect("crates/ must exist")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = format!("regwin-{}", dir.file_name().unwrap().to_string_lossy());
        roots.push((name, dir.join("src")));
    }

    let mut lines = Vec::new();
    for (crate_name, src) in roots {
        let mut files = Vec::new();
        rust_files(&src, &mut files);
        for file in files {
            let rel = file.strip_prefix(&src).unwrap().display().to_string();
            let text = fs::read_to_string(&file).expect("source file must be readable");
            for line in text.lines() {
                if line.trim() == "#[cfg(test)]" {
                    break;
                }
                if let Some(decl) = public_decl(line) {
                    lines.push(format!("{crate_name}/{rel}: {decl}"));
                }
            }
        }
    }
    lines.sort();
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[test]
fn public_api_matches_the_committed_snapshot() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let snapshot_path = root.join(SNAPSHOT);
    let current = surface();
    if std::env::var_os("REGWIN_BLESS").is_some() {
        fs::write(&snapshot_path, &current).expect("cannot write snapshot");
        return;
    }
    let committed = fs::read_to_string(&snapshot_path).unwrap_or_default();
    if committed == current {
        return;
    }
    let committed_set: std::collections::BTreeSet<&str> = committed.lines().collect();
    let current_set: std::collections::BTreeSet<&str> = current.lines().collect();
    let mut diff = String::new();
    for gone in committed_set.difference(&current_set) {
        diff.push_str(&format!("  - {gone}\n"));
    }
    for added in current_set.difference(&committed_set) {
        diff.push_str(&format!("  + {added}\n"));
    }
    panic!(
        "public API surface changed relative to {SNAPSHOT}:\n{diff}\
         If intentional, re-bless with: REGWIN_BLESS=1 cargo test --test public_api"
    );
}
