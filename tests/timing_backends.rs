//! Timing-backend differential suite: the properties that make the
//! `TimingModel` trait refactor safe and `BENCH_timing.json`
//! committable.
//!
//! The `s20` backend must be *invisible* — runs through the trait
//! reproduce the pre-trait flat accounting exactly (the committed
//! artifacts are additionally byte-compared by CI's timing-smoke job).
//! The `pipeline` backend must be bit-deterministic: repeat runs,
//! 1-vs-8-worker sweeps and cold-vs-warm cache states all serialize to
//! identical bytes.

use regwin::machine::CycleCategory;
use regwin::prelude::*;
use regwin_core::{MatrixSpec, SchedulingPolicy as Policy};
use regwin_sweep::records_to_json;
use regwin_traps::build_scheme;

fn pipeline_with(timing: TimingKind) -> SpellPipeline {
    SpellPipeline::new(SpellConfig::small().with_timing(timing))
}

/// A small sweep matrix under the given timing backend.
fn spec(timing: TimingKind) -> MatrixSpec {
    MatrixSpec {
        corpus: CorpusSpec::small(),
        behaviors: vec![
            Behavior::new(Concurrency::High, Granularity::Medium),
            Behavior::new(Concurrency::Low, Granularity::Fine),
        ],
        schemes: SchemeKind::ALL.to_vec(),
        windows: vec![4, 8],
        policy: Policy::Fifo,
        timing,
    }
}

fn engine(workers: usize) -> SweepEngine {
    SweepEngine::with_config(SweepConfig { cache_dir: None, workers, ..SweepConfig::default() })
}

#[test]
fn explicit_s20_timing_is_the_default_accounting() {
    // `--timing s20` and the default configuration must be the same
    // backend, not merely similar ones.
    let default_cfg = SpellPipeline::new(SpellConfig::small());
    let explicit = pipeline_with(TimingKind::S20);
    for scheme in SchemeKind::ALL {
        for nwindows in [4, 8, 16] {
            let a = default_cfg.run(nwindows, scheme).unwrap();
            let b = explicit.run(nwindows, scheme).unwrap();
            assert_eq!(a.report.cycles, b.report.cycles, "{scheme} w={nwindows}");
            assert_eq!(a.report.stats, b.report.stats, "{scheme} w={nwindows}");
            assert_eq!(a.output, b.output, "{scheme} w={nwindows}");
        }
    }
}

#[test]
fn s20_charges_no_hazard_stalls_and_pipeline_does() {
    let s20 = pipeline_with(TimingKind::S20).run(4, SchemeKind::Sp).unwrap();
    assert_eq!(s20.report.cycles.category(CycleCategory::HazardStall), 0);
    // On a cramped window file the pipeline's scoreboard and LSQ
    // backpressure must actually fire.
    let pipe = pipeline_with(TimingKind::Pipeline).run(4, SchemeKind::Sp).unwrap();
    assert!(pipe.report.cycles.category(CycleCategory::HazardStall) > 0);
    // The backends price overhead differently but never change the
    // application: same work, same answers.
    assert_ne!(s20.report.total_cycles(), pipe.report.total_cycles());
    assert_eq!(
        s20.report.cycles.category(CycleCategory::App),
        pipe.report.cycles.category(CycleCategory::App)
    );
    assert_eq!(s20.sorted_misspellings(), pipe.sorted_misspellings());
}

#[test]
fn pipeline_repeat_runs_are_bit_identical() {
    for scheme in SchemeKind::ALL {
        let a = pipeline_with(TimingKind::Pipeline).run(7, scheme).unwrap();
        let b = pipeline_with(TimingKind::Pipeline).run(7, scheme).unwrap();
        assert_eq!(a.report.cycles, b.report.cycles, "{scheme}");
        assert_eq!(a.report.stats, b.report.stats, "{scheme}");
        assert_eq!(a.output, b.output, "{scheme}");
    }
}

#[test]
fn trace_replay_under_pipeline_matches_a_direct_pipeline_run() {
    // The sweep engine's FIFO fast path replays one recorded trace
    // under every configuration. Traces store *what happened*, not what
    // it cost, so a replay with the pipeline backend must equal a
    // direct pipeline simulation.
    let recorder = SpellPipeline::new(SpellConfig::small());
    let (_, trace) = recorder.run_traced(8, SchemeKind::Sp).unwrap();
    for scheme in SchemeKind::ALL {
        for nwindows in [4, 8, 16] {
            let config = MachineConfig::new(nwindows).with_timing(TimingKind::Pipeline);
            let replayed = trace.replay(config, build_scheme(scheme)).unwrap();
            let direct = pipeline_with(TimingKind::Pipeline).run(nwindows, scheme).unwrap().report;
            assert_eq!(replayed.cycles, direct.cycles, "{scheme} w={nwindows}");
            assert_eq!(replayed.stats, direct.stats, "{scheme} w={nwindows}");
        }
    }
}

#[test]
fn pipeline_sweep_is_worker_count_independent() {
    let spec = spec(TimingKind::Pipeline);
    let serial = engine(1).run_matrix(&spec).unwrap();
    let parallel = engine(8).run_matrix(&spec).unwrap();
    assert_eq!(serial.len(), spec.len());
    assert_eq!(records_to_json(&serial), records_to_json(&parallel));
}

#[test]
fn pipeline_sweep_is_cache_state_independent() {
    let dir = std::env::temp_dir().join(format!("regwin-timing-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = spec(TimingKind::Pipeline);
    let cold = SweepEngine::with_config(SweepConfig {
        cache_dir: Some(dir.clone()),
        workers: 8,
        ..SweepConfig::default()
    });
    let fresh = cold.run_matrix(&spec).unwrap();
    let warm = SweepEngine::with_config(SweepConfig {
        cache_dir: Some(dir.clone()),
        workers: 1,
        ..SweepConfig::default()
    });
    let cached = warm.run_matrix(&spec).unwrap();
    assert_eq!(warm.summary().cache_hits, spec.len(), "second run must be all hits");
    assert_eq!(records_to_json(&fresh), records_to_json(&cached));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backends_get_distinct_cache_entries() {
    // A cached s20 result must never satisfy a pipeline job: the
    // timing backend is part of the content address.
    let dir = std::env::temp_dir().join(format!("regwin-timing-keys-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let eng = |d: &std::path::Path| {
        SweepEngine::with_config(SweepConfig {
            cache_dir: Some(d.to_path_buf()),
            workers: 4,
            ..SweepConfig::default()
        })
    };
    let first = eng(&dir);
    first.run_matrix(&spec(TimingKind::S20)).unwrap();
    let second = eng(&dir);
    let records = second.run_matrix(&spec(TimingKind::Pipeline)).unwrap();
    assert_eq!(second.summary().cache_hits, 0, "pipeline jobs must not hit s20 entries");
    assert_eq!(records.len(), spec(TimingKind::Pipeline).len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cluster_oracle_holds_under_the_pipeline_backend() {
    // The 1-PE cluster differential (cluster == plain spell run) is a
    // property of the simulation, not of any particular price list; it
    // must survive a backend swap.
    let spell = SpellConfig::small().with_timing(TimingKind::Pipeline);
    let cfg = ClusterConfig::homogeneous(1, SchemeKind::Sp, 8, spell);
    let cluster = run_spell_cluster(&cfg, None).unwrap();
    let direct = SpellPipeline::new(spell).run(8, SchemeKind::Sp).unwrap();
    assert_eq!(
        regwin_sweep::report_to_json(&cluster.report.merged()),
        regwin_sweep::report_to_json(&direct.report)
    );
}
