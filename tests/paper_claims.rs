//! The paper's headline quantitative claims, asserted on a scaled-down
//! corpus (the full-scale versions are checked by `repro-all`'s shape
//! report; see EXPERIMENTS.md).

use regwin::core::figures::{table2, Sweep};
use regwin::core::{CorpusSpec, MatrixSpec, SchedulingPolicy};

fn corpus() -> CorpusSpec {
    CorpusSpec::scaled(5)
}

fn windows() -> Vec<usize> {
    MatrixSpec::quick_window_sweep()
}

fn quiet(_: usize, _: usize) {}

#[test]
fn table2_costs_match_the_papers_measured_ranges() {
    let result = table2(CorpusSpec::small()).unwrap();
    assert!(result.all_in_range, "\n{}", result.table);
}

#[test]
fn observed_switch_shapes_match_table2_rows() {
    // Each scheme must only ever perform the transfer shapes the paper
    // tabulates (plus fresh-thread dispatches with zero restores).
    let result = table2(CorpusSpec::small()).unwrap();
    let rows = &result.observed;
    assert!(!rows.is_empty());
    let csv = rows.to_csv();
    for line in csv.lines().skip(1) {
        // The shape cell "(s,r)" itself contains a comma.
        let mut fields = line.split(',');
        let scheme = fields.next().unwrap();
        let shape = format!("{},{}", fields.next().unwrap(), fields.next().unwrap());
        let shape = shape.as_str();
        if scheme == "SP" {
            // SP never moves more than 2 windows out, 1 in.
            assert!(
                ["(0,0)", "(0,1)", "(1,0)", "(1,1)", "(2,0)", "(2,1)"].contains(&shape),
                "unexpected SP shape {shape}"
            );
        }
        if scheme == "SNP" {
            assert!(
                ["(0,0)", "(0,1)", "(1,0)", "(1,1)", "(2,0)", "(2,1)"].contains(&shape),
                "unexpected SNP shape {shape}"
            );
        }
    }
}

#[test]
fn high_concurrency_sweep_reproduces_figure_11_shape() {
    let sweep = Sweep::high(corpus(), &windows(), SchedulingPolicy::Fifo, quiet).unwrap();
    let series = sweep.execution_time_series();
    let get =
        |label: &str, w: usize| series.iter().find(|s| s.label == label).unwrap().at(w).unwrap();
    // With sufficient windows the best scheme is SP (paper §6.3).
    assert!(get("SP fine", 32) < get("SNP fine", 32));
    assert!(get("SNP fine", 32) < get("NS fine", 32));
    // With few windows the NS scheme is best (paper §6.3).
    assert!(get("NS fine", 4) < get("SP fine", 4));
    // As granularity becomes fine, the advantage of sharing increases.
    let advantage = |g: &str| get(&format!("NS {g}"), 32) / get(&format!("SP {g}"), 32);
    assert!(advantage("fine") > advantage("coarse"));
}

#[test]
fn figure_12_switch_costs_approach_best_case_with_many_windows() {
    let sweep = Sweep::high(corpus(), &windows(), SchedulingPolicy::Fifo, quiet).unwrap();
    let series = sweep.avg_switch_series();
    let get =
        |label: &str, w: usize| series.iter().find(|s| s.label == label).unwrap().at(w).unwrap();
    // SP's best case is 93–98 cycles, SNP's 113–118 (Table 2); with many
    // windows "most context switches are done without any window
    // transfer" (§6.3).
    assert!(get("SP fine", 32) < 100.0);
    assert!(get("SNP fine", 32) < 120.0);
    // NS can never get below its (1,1) floor of ~145 cycles.
    assert!(get("NS fine", 32) > 145.0);
}

#[test]
fn figure_13_trap_probability_collapses_for_sharing_schemes() {
    let sweep = Sweep::high(corpus(), &windows(), SchedulingPolicy::Fifo, quiet).unwrap();
    let series = sweep.trap_probability_series();
    let get =
        |label: &str, w: usize| series.iter().find(|s| s.label == label).unwrap().at(w).unwrap();
    assert!(get("SP fine", 32) < 0.02);
    assert!(get("SNP fine", 32) < 0.02);
    // NS keeps paying its flush-and-refill traps no matter how many
    // windows exist.
    assert!(get("NS fine", 32) > 0.1);
}

#[test]
fn figure_14_low_concurrency_needs_more_windows_to_saturate() {
    // §6.4: total window activity is larger at low concurrency (coarse
    // granularity), so saturation needs ~20 windows.
    let sweep =
        Sweep::low(corpus(), &[4, 8, 12, 16, 20, 32], SchedulingPolicy::Fifo, quiet).unwrap();
    let series = sweep.execution_time_series();
    let sp = series.iter().find(|s| s.label == "SP coarse").unwrap();
    let at8 = sp.at(8).unwrap();
    let at20 = sp.at(20).unwrap();
    assert!(
        at20 < at8 * 0.95,
        "SP coarse should still be improving past 8 windows: {at8} -> {at20}"
    );
}

#[test]
fn figure_15_working_set_rescues_sharing_at_few_windows() {
    let fifo = Sweep::high(corpus(), &[7, 8], SchedulingPolicy::Fifo, quiet).unwrap();
    let ws = Sweep::high(corpus(), &[7, 8], SchedulingPolicy::WorkingSet, quiet).unwrap();
    let get = |sweep: &Sweep, label: &str, w: usize| {
        sweep.execution_time_series().iter().find(|s| s.label == label).unwrap().at(w).unwrap()
    };
    // "the sharing schemes work well with even seven or eight windows"
    for w in [7usize, 8] {
        let improvement = get(&fifo, "SP fine", w) / get(&ws, "SP fine", w);
        assert!(improvement > 1.0, "working set must improve SP at {w} windows");
    }
}
