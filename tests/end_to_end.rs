//! End-to-end tests across the whole workspace, through the umbrella
//! crate's public API.

use regwin::prelude::*;

fn small_pipeline() -> SpellPipeline {
    SpellPipeline::new(SpellConfig::small())
}

#[test]
fn the_full_stack_produces_correct_spellcheck_results() {
    let pipeline = small_pipeline();
    let expected = pipeline.expected_sorted();
    assert!(!expected.is_empty());
    for scheme in SchemeKind::ALL {
        for nwindows in [4, 7, 8, 16, 32] {
            let outcome = pipeline.run(nwindows, scheme).unwrap();
            assert_eq!(outcome.sorted_misspellings(), expected, "{scheme} at {nwindows} windows");
        }
    }
}

#[test]
fn all_planted_misspellings_are_caught() {
    let pipeline = small_pipeline();
    let outcome = pipeline.run(8, SchemeKind::Sp).unwrap();
    let found = outcome.sorted_misspellings();
    for planted in &pipeline.corpus().planted_misspellings {
        assert!(found.binary_search(planted).is_ok(), "{planted} missed");
    }
    for stop_form in &pipeline.corpus().planted_stop_forms {
        assert!(found.binary_search(stop_form).is_ok(), "{stop_form} missed");
    }
}

#[test]
fn execution_is_bit_for_bit_deterministic() {
    let a = small_pipeline().run(7, SchemeKind::Snp).unwrap();
    let b = small_pipeline().run(7, SchemeKind::Snp).unwrap();
    assert_eq!(a.report.total_cycles(), b.report.total_cycles());
    assert_eq!(a.report.stats, b.report.stats);
    assert_eq!(a.output, b.output);
}

#[test]
fn cycle_totals_decompose_exactly() {
    use regwin::machine::CycleCategory;
    let outcome = small_pipeline().run(8, SchemeKind::Sp).unwrap();
    let c = &outcome.report.cycles;
    let sum: u64 = CycleCategory::ALL.iter().map(|cat| c.category(*cat)).sum();
    assert_eq!(sum, c.total());
    assert_eq!(c.total() - c.category(CycleCategory::App), outcome.report.overhead_cycles());
}

#[test]
fn app_cycles_are_scheme_and_window_independent() {
    use regwin::machine::CycleCategory;
    // The application work is identical everywhere; schemes only change
    // the overhead categories.
    let mut app_cycles = Vec::new();
    let pipeline = small_pipeline();
    for scheme in SchemeKind::ALL {
        for nwindows in [4, 8, 32] {
            let outcome = pipeline.run(nwindows, scheme).unwrap();
            app_cycles.push(outcome.report.cycles.category(CycleCategory::App));
        }
    }
    assert!(app_cycles.windows(2).all(|w| w[0] == w[1]), "{app_cycles:?}");
}

#[test]
fn custom_runtime_apps_compose_with_any_scheme() {
    for scheme in SchemeKind::ALL {
        let mut sim = Simulation::new(6, scheme).unwrap();
        let s = sim.add_stream("numbers", 3, 1);
        sim.spawn("squares", move |ctx| {
            for i in 1..=10u8 {
                let sq = ctx.call(|ctx| {
                    ctx.compute(4);
                    Ok(i.wrapping_mul(i))
                })?;
                ctx.write_byte(s, sq)?;
            }
            ctx.close_writer(s)
        });
        sim.spawn("sum", move |ctx| {
            let mut total = 0u32;
            while let Some(b) = ctx.read_byte(s)? {
                total += u32::from(b);
            }
            assert_eq!(total, (1..=10u32).map(|i| i * i).sum::<u32>());
            Ok(())
        });
        sim.run().unwrap();
    }
}

#[test]
fn machine_is_usable_standalone_through_the_umbrella() {
    use regwin::machine::{ExecOutcome, Machine};
    let mut m = Machine::new(8).unwrap();
    let t = m.add_thread();
    let slot = m.reserved().unwrap().above(8);
    m.start_initial_frame(t, slot).unwrap();
    m.set_current(Some(t)).unwrap();
    m.grant_all_free(t).unwrap();
    assert!(matches!(m.try_save().unwrap(), ExecOutcome::Completed));
    m.check_invariants().unwrap();
}
