//! Full-scale (paper-sized) shape checks. Ignored by default because a
//! complete run takes minutes; execute with:
//!
//! ```sh
//! cargo test --release --test full_scale -- --ignored
//! ```
//!
//! The same checks run automatically (against fresh data) at the end of
//! `repro-all`; see EXPERIMENTS.md for recorded results.

use regwin::core::figures::Sweep;
use regwin::core::{CorpusSpec, MatrixSpec, SchedulingPolicy};

fn quiet(_: usize, _: usize) {}

#[test]
#[ignore = "paper-scale run (~minutes); run with --ignored --release"]
fn full_scale_figure_11_12_13_shapes() {
    let windows = MatrixSpec::paper_window_sweep();
    let sweep = Sweep::high(CorpusSpec::paper(), &windows, SchedulingPolicy::Fifo, quiet).unwrap();

    let time = sweep.execution_time_series();
    let get = |series: &[regwin::core::Series], label: &str, w: usize| {
        series.iter().find(|s| s.label == label).unwrap().at(w).unwrap()
    };
    for g in ["coarse", "medium", "fine"] {
        assert!(get(&time, &format!("SP {g}"), 32) < get(&time, &format!("SNP {g}"), 32));
        assert!(get(&time, &format!("SNP {g}"), 32) < get(&time, &format!("NS {g}"), 32));
    }
    assert!(get(&time, "NS fine", 4) < get(&time, "SP fine", 4));

    let switch = sweep.avg_switch_series();
    assert!(get(&switch, "SP fine", 32) < 100.0, "SP at its best case");
    assert!(get(&switch, "SNP fine", 32) < 120.0, "SNP at its best case");
    assert!(get(&switch, "NS fine", 32) > 145.0, "NS cannot beat its floor");

    let traps = sweep.trap_probability_series();
    assert!(get(&traps, "SP fine", 32) < 0.005);
    assert!(get(&traps, "NS fine", 32) > 0.2);
}

#[test]
#[ignore = "paper-scale run (~minutes); run with --ignored --release"]
fn full_scale_working_set_rescues_seven_windows() {
    let fifo = Sweep::high(CorpusSpec::paper(), &[7], SchedulingPolicy::Fifo, quiet).unwrap();
    let ws = Sweep::high(CorpusSpec::paper(), &[7], SchedulingPolicy::WorkingSet, quiet).unwrap();
    let value = |sweep: &Sweep| {
        sweep.execution_time_series().iter().find(|s| s.label == "SP fine").unwrap().at(7).unwrap()
    };
    assert!(
        value(&ws) < value(&fifo) * 0.8,
        "working set must improve SP at 7 windows by well over 20%"
    );
}
