//! A second workload in the paper's spirit: the classic CSP prime sieve
//! as a chain of filter threads over byte streams — the kind of
//! fine-grained pipeline the paper's introduction motivates (functional/
//! logic-language runtimes, parallel C libraries).
//!
//! Every candidate number flows through every live filter; with 1-byte
//! buffers each hop is a context switch, so the window schemes are under
//! constant pressure.
//!
//! ```sh
//! cargo run --release --example prime_sieve
//! ```

use regwin::prelude::*;
use std::sync::{Arc, Mutex};

const FILTERS: usize = 12; // enough for primes < 41²
const LIMIT: u8 = 250;

fn main() -> Result<(), RtError> {
    let primes_found = Arc::new(Mutex::new(Vec::<u8>::new()));
    let mut results = Vec::new();

    for (scheme, nwindows) in SchemeKind::ALL.iter().flat_map(|s| [(*s, 8usize), (*s, 24)]) {
        let mut sim = Simulation::new(nwindows, scheme)?;
        let mut input = sim.add_stream("candidates", 1, 1);

        // The generator feeds 2..LIMIT into the chain.
        let first = input;
        sim.spawn("generator", move |ctx| {
            for n in 2..=LIMIT {
                ctx.call(|ctx| {
                    ctx.compute(1);
                    ctx.write_byte(first, n)
                })?;
            }
            ctx.close_writer(first)
        });

        // Each filter adopts the first number it sees (a prime), then
        // drops that prime's multiples and forwards the rest.
        let found = Arc::clone(&primes_found);
        for i in 0..FILTERS {
            let output = sim.add_stream(format!("chain{i}"), 1, 1);
            let inlet = input;
            let found = Arc::clone(&found);
            sim.spawn(format!("filter{i}"), move |ctx| {
                let mine = match ctx.call(|ctx| {
                    ctx.compute(1);
                    ctx.read_byte(inlet)
                })? {
                    Some(p) => p,
                    None => return ctx.close_writer(output),
                };
                found.lock().expect("primes").push(mine);
                loop {
                    let n = ctx.call(|ctx| {
                        ctx.compute(1);
                        ctx.read_byte(inlet)
                    })?;
                    match n {
                        Some(n) if n % mine != 0 => ctx.write_byte(output, n)?,
                        Some(_) => ctx.compute(1), // a multiple: drop it
                        None => return ctx.close_writer(output),
                    }
                }
            });
            input = output;
        }

        // The tail collects the survivors (primes beyond the filters'
        // own, up to the square of the last filter prime).
        let tail = input;
        let found_tail = Arc::clone(&primes_found);
        sim.spawn("tail", move |ctx| {
            while let Some(n) = ctx.read_byte(tail)? {
                found_tail.lock().expect("primes").push(n);
            }
            Ok(())
        });

        primes_found.lock().expect("primes").clear();
        let report = sim.run()?;
        let mut primes = primes_found.lock().expect("primes").clone();
        primes.sort_unstable();
        results.push((scheme, nwindows, report, primes));
    }

    // All schemes must sieve identically.
    let reference: Vec<u8> =
        (2..=LIMIT).filter(|n| (2..*n).all(|d| n % d != 0 || *n == d)).collect();
    println!("primes below {LIMIT}: {} found\n", reference.len());
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "scheme", "windows", "cycles", "switches", "ovf", "unf"
    );
    for (scheme, nwindows, report, primes) in &results {
        assert_eq!(primes, &reference, "{scheme} sieve output");
        println!(
            "{:<6} {:>8} {:>10} {:>10} {:>9} {:>9}",
            scheme.name(),
            nwindows,
            report.total_cycles(),
            report.stats.context_switches,
            report.stats.overflow_traps,
            report.stats.underflow_traps,
        );
    }
    println!(
        "\n14 threads: at 8 windows their total window activity exceeds the\n\
         file and NS's brute flush wins — the regime the paper fixes with\n\
         working-set scheduling (§4.6). At 24 windows the working sets fit\n\
         and the sharing schemes switch almost for free."
    );
    Ok(())
}
