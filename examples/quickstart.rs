//! Quickstart: run the paper's multi-threaded spell checker on a
//! simulated 7-window SPARC-like CPU under each window-management scheme.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use regwin::prelude::*;

fn main() -> Result<(), RtError> {
    // A scaled-down corpus so the example runs in milliseconds; swap in
    // `CorpusSpec::paper()` for the full 40 500-byte document.
    let config = SpellConfig::new(CorpusSpec::small(), 4, 4);
    let pipeline = SpellPipeline::new(config);

    println!("spell-checking a {}-byte synthetic LaTeX document", pipeline.corpus().document.len());
    println!(
        "dictionaries: {} + {} bytes, {} planted misspellings\n",
        pipeline.corpus().dict1.len(),
        pipeline.corpus().dict2.len(),
        pipeline.corpus().planted_misspellings.len(),
    );

    for scheme in SchemeKind::ALL {
        let outcome = pipeline.run(7, scheme)?;
        let report = &outcome.report;
        println!(
            "{:<4} {:>9} cycles | {:>6} switches (avg {:>6.1} cy) | traps: {:>5} ovf / {:>5} unf | p={:.4}",
            scheme.name(),
            report.total_cycles(),
            report.stats.context_switches,
            report.avg_switch_cycles(),
            report.stats.overflow_traps,
            report.stats.underflow_traps,
            report.trap_probability(),
        );
        // Every scheme reports exactly the same misspellings — sharing
        // windows is invisible to the program.
        assert_eq!(outcome.sorted_misspellings(), pipeline.expected_sorted());
    }

    let outcome = pipeline.run(7, SchemeKind::Sp)?;
    let words = outcome.misspellings();
    println!("\nfirst misspellings reported: {:?}", &words[..words.len().min(8)]);
    Ok(())
}
