//! The record/replay workflow: capture the spell checker's window-event
//! trace once, then sweep schemes, analyse its §5 behaviour, and render
//! the window file's occupancy over time — without re-running the
//! simulation.
//!
//! ```sh
//! cargo run --release --example trace_workflow
//! ```

use regwin::core::{activity, timeline};
use regwin::machine::MachineConfig;
use regwin::prelude::*;
use regwin::traps::build_scheme;

fn main() -> Result<(), RtError> {
    // 1. Record one execution (fine granularity, high concurrency).
    let config = SpellConfig::new(CorpusSpec::scaled(5), 2, 2);
    let pipeline = SpellPipeline::new(config);
    let (outcome, trace) = pipeline.run_traced(8, SchemeKind::Sp)?;
    println!(
        "recorded {} events from a run with {} context switches\n",
        trace.len(),
        outcome.report.stats.context_switches
    );

    // 2. Replay the same trace under every scheme and two window counts.
    println!("scheme  windows      cycles   avg switch   trap p");
    for scheme in SchemeKind::ALL {
        for windows in [6usize, 24] {
            let report = trace.replay(MachineConfig::new(windows), build_scheme(scheme))?;
            println!(
                "{:<6} {:>8} {:>11} {:>12.1} {:>8.4}",
                scheme.name(),
                windows,
                report.total_cycles(),
                report.avg_switch_cycles(),
                report.trap_probability(),
            );
        }
    }

    // 3. Analyse the §5 behaviour quantities.
    let report = activity::analyze(&trace, 5_000);
    println!(
        "\n§5 metrics: {:.1} cycles/run, {:.2} windows/thread, concurrency {:.2}, \
         total activity {:.1} (peak {})",
        report.avg_run_cycles,
        report.avg_activity_per_thread,
        report.avg_concurrency,
        report.avg_total_activity,
        report.max_total_activity,
    );

    // 4. Render the window file's life under SP vs NS.
    for scheme in [SchemeKind::Sp, SchemeKind::Ns] {
        let tl = timeline::sample_timeline(&trace, 10, build_scheme(scheme), 72)?;
        println!("\n{}", tl.render());
    }
    println!("Under SP the digits persist across columns (threads stay resident);\nunder NS each column repaints around the single running thread.");
    Ok(())
}
