//! Build your own multi-threaded application on the runtime: a
//! three-stage word-frequency pipeline, with every procedure call mapped
//! onto the simulated register windows.
//!
//! ```sh
//! cargo run --release --example custom_pipeline
//! ```

use regwin::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

const TEXT: &str = "the quick brown fox jumps over the lazy dog \
                    the dog barks and the fox runs over the hill \
                    the quick dog naps under the brown hill";

fn main() -> Result<(), RtError> {
    let mut sim = Simulation::new(8, SchemeKind::Sp)?;
    let raw = sim.add_stream("raw-bytes", 8, 1);
    let words = sim.add_stream("words", 8, 1);
    let counts: Arc<Mutex<BTreeMap<String, u32>>> = Arc::new(Mutex::new(BTreeMap::new()));

    // Stage 1: a "file reader" copying the text into the pipeline.
    sim.spawn("reader", move |ctx| {
        for chunk in TEXT.as_bytes().chunks(4) {
            ctx.call(|ctx| {
                ctx.compute(2);
                ctx.write_all(raw, chunk)
            })?;
        }
        ctx.close_writer(raw)
    });

    // Stage 2: a tokenizer emitting newline-separated words.
    sim.spawn("tokenizer", move |ctx| {
        let mut word = Vec::new();
        loop {
            let b = ctx.call(|ctx| {
                ctx.compute(1);
                ctx.read_byte(raw)
            })?;
            match b {
                Some(b) if b.is_ascii_alphabetic() => word.push(b),
                byte => {
                    if !word.is_empty() {
                        let w = std::mem::take(&mut word);
                        ctx.call(|ctx| {
                            ctx.compute(w.len() as u64);
                            ctx.write_all(words, &w)?;
                            ctx.write_byte(words, b'\n')
                        })?;
                    }
                    if byte.is_none() {
                        return ctx.close_writer(words);
                    }
                }
            }
        }
    });

    // Stage 3: the counter.
    let counts2 = Arc::clone(&counts);
    sim.spawn("counter", move |ctx| {
        let mut word = String::new();
        loop {
            let b = ctx.call(|ctx| {
                ctx.compute(1);
                ctx.read_byte(words)
            })?;
            match b {
                Some(b'\n') => {
                    let w = std::mem::take(&mut word);
                    ctx.call(|ctx| {
                        ctx.compute(3 + w.len() as u64);
                        *counts2.lock().expect("counts poisoned").entry(w).or_insert(0) += 1;
                        Ok(())
                    })?;
                }
                Some(b) => word.push(b as char),
                None => return Ok(()),
            }
        }
    });

    let report = sim.run()?;
    println!("{report}");
    let counts = counts.lock().expect("counts poisoned");
    let mut pairs: Vec<_> = counts.iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("top words:");
    for (w, c) in pairs.iter().take(5) {
        println!("  {c:>2} × {w}");
    }
    assert_eq!(counts["the"], 7);
    Ok(())
}
