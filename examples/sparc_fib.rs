//! Run real SPARC-style assembly — recursive fibonacci with genuine
//! `save`/`restore` window traffic — under each window-management
//! scheme, and watch the window file absorb or spill the recursion.
//!
//! ```sh
//! cargo run --example sparc_fib
//! ```

use regwin::asm::{assemble, AsmMachine};
use regwin::prelude::*;

const FIB: &str = r"
main:
    mov 14, %o0
    call fib
    halt                      ! exit value = fib(14)

fib:                          ! u64 fib(u64 n)
    save                      ! new window; n arrives in %i0
    cmp %i0, 2
    bl  base
    sub %i0, 1, %o0
    call fib                  ! fib(n-1)
    mov %o0, %l0
    sub %i0, 2, %o0
    call fib                  ! fib(n-2)
    add %l0, %o0, %l1
    restore %l1, 0, %o0       ! return via the restore-add idiom (§4.3)
    ret

base:
    restore %i0, 0, %o0       ! fib(0) = 0, fib(1) = 1
    ret
";

fn main() -> Result<(), regwin::asm::AsmError> {
    let program = assemble(FIB)?;
    println!("fib(14) by recursive SPARC-subset code, depth-15 call stack:\n");
    println!(
        "{:<6} {:>8} {:>12} {:>10} {:>10} {:>12}",
        "scheme", "windows", "result", "ovf traps", "unf traps", "cycles"
    );
    for scheme in SchemeKind::ALL {
        for nwindows in [4usize, 8, 16, 32] {
            let mut m = AsmMachine::new(nwindows, scheme)?;
            let t = m.load("main", program.clone());
            m.run(10_000_000)?;
            println!(
                "{:<6} {:>8} {:>12} {:>10} {:>10} {:>12}",
                scheme.name(),
                nwindows,
                m.exit_value(t).expect("halted"),
                m.stats().overflow_traps,
                m.stats().underflow_traps,
                m.total_cycles(),
            );
            assert_eq!(m.exit_value(t), Some(377));
        }
    }
    println!(
        "\nEvery configuration computes fib(14) = 377; they differ only in\n\
         how many window traps the recursion costs — none once the file\n\
         holds the whole 15-frame working set."
    );
    Ok(())
}
