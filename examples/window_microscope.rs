//! Window microscope: drive the raw machine by hand and watch the
//! physical window file as two threads share it — including the paper's
//! key moment, an underflow trap resolved *in place* without spilling
//! the other thread's windows.
//!
//! ```sh
//! cargo run --example window_microscope
//! ```

use regwin::machine::{Machine, SlotUse, WindowIndex};
use regwin::prelude::*;

fn draw(cpu: &Cpu, label: &str) {
    let m = cpu.machine();
    print!("{label:<42}");
    for i in 0..m.nwindows() {
        let w = WindowIndex::new(i);
        let cell = match m.slot_use(w) {
            SlotUse::Free => "....".to_string(),
            SlotUse::Live(t) => format!("L{} ", t),
            SlotUse::Dead(t) => format!("d{} ", t),
            SlotUse::Reserved => "RSV ".to_string(),
            SlotUse::Prw(t) => format!("P{} ", t),
        };
        let marker = if m.current_thread().is_some() && m.cwp() == w { "*" } else { " " };
        print!("[{cell:>4}{marker}]");
    }
    println!();
}

fn stats_line(m: &Machine) {
    let s = m.stats();
    println!(
        "\n  {} saves, {} restores, {} overflow traps ({} spills), {} underflow traps ({} refills)",
        s.saves_executed,
        s.restores_executed,
        s.overflow_traps,
        s.overflow_spills,
        s.underflow_traps,
        s.underflow_restores,
    );
}

fn main() -> Result<(), regwin::traps::SchemeError> {
    println!("SP scheme on 8 windows; * marks the CWP; L=live d=dead P=PRW\n");
    let mut cpu = Cpu::new(8, Box::new(SpScheme::new()))?;
    let a = cpu.add_thread();
    let b = cpu.add_thread();

    cpu.switch_to(a)?;
    draw(&cpu, "dispatch T0");
    for i in 0..3 {
        cpu.save()?;
        draw(&cpu, &format!("T0 calls (depth {})", i + 2));
    }
    cpu.switch_to(b)?;
    draw(&cpu, "switch to T1 (T0 stays in situ)");
    cpu.save()?;
    draw(&cpu, "T1 calls");
    cpu.save()?;
    draw(&cpu, "T1 calls deeper -> spills T0's bottom");

    cpu.switch_to(a)?;
    draw(&cpu, "back to T0: zero transfers");
    cpu.restore()?;
    cpu.restore()?;
    draw(&cpu, "T0 returns twice (dead slots above)");
    cpu.restore()?;
    draw(&cpu, "T0 returns to its spilled frame:");
    println!("{:>42}the caller was restored IN PLACE — T1's", "");
    println!("{:>42}windows did not move (paper Fig 8)", "");

    cpu.switch_to(b)?;
    draw(&cpu, "back to T1: zero transfers again");
    stats_line(cpu.machine());
    Ok(())
}
