//! The working-set concept on register windows (paper §4.6): when the
//! file is small, enqueue awoken threads whose windows are still resident
//! at the *front* of the ready queue. Concurrency drops, the active
//! threads' total window activity fits the file, and the sharing schemes
//! become viable with as few as 7–8 windows (paper Figure 15).
//!
//! ```sh
//! cargo run --release --example working_set
//! ```

use regwin::prelude::*;

fn run(policy: SchedulingPolicy, nwindows: usize) -> Result<RunReport, RtError> {
    let config = SpellConfig::new(CorpusSpec::scaled(10), 1, 1).with_policy(policy);
    Ok(SpellPipeline::new(config).run(nwindows, SchemeKind::Sp)?.report)
}

fn main() -> Result<(), RtError> {
    println!("SP scheme, fine granularity, FIFO vs working-set scheduling\n");
    println!("windows   FIFO cycles     WS cycles   improvement   FIFO spills   WS spills");
    for nwindows in [4usize, 6, 7, 8, 10, 12, 16, 24] {
        let fifo = run(SchedulingPolicy::Fifo, nwindows)?;
        let ws = run(SchedulingPolicy::WorkingSet, nwindows)?;
        let gain = 100.0 * (1.0 - ws.total_cycles() as f64 / fifo.total_cycles() as f64);
        println!(
            "{:>7}   {:>11}   {:>11}   {:>10.1}%   {:>11}   {:>9}",
            nwindows,
            fifo.total_cycles(),
            ws.total_cycles(),
            gain,
            fifo.stats.switch_saves + fifo.stats.overflow_spills,
            ws.stats.switch_saves + ws.stats.overflow_spills,
        );
    }
    println!(
        "\nThe gain concentrates at small window counts, where FIFO thrashes the\n\
         file; with plenty of windows the two policies converge — exactly the\n\
         shape of the paper's Figure 15."
    );
    Ok(())
}
