//! Scheme shootout: sweep the window count and watch the crossover the
//! paper's Figure 11 shows — NS wins with few windows, the sharing
//! schemes win (SP first) once the file can hold the working set.
//!
//! ```sh
//! cargo run --release --example scheme_shootout
//! ```

use regwin::core::report::{series_table, Series};
use regwin::prelude::*;

fn main() -> Result<(), RtError> {
    // Fine granularity, high concurrency: 1-byte buffers everywhere —
    // the behaviour where scheme choice matters most.
    let config = SpellConfig::new(CorpusSpec::scaled(10), 1, 1);
    let pipeline = SpellPipeline::new(config);

    let windows = [4usize, 5, 6, 7, 8, 10, 12, 16, 24, 32];
    let mut series: Vec<Series> =
        SchemeKind::ALL.iter().map(|s| Series::new(s.name().to_string())).collect();

    for &w in &windows {
        for (i, &scheme) in SchemeKind::ALL.iter().enumerate() {
            let outcome = pipeline.run(w, scheme)?;
            series[i].push(w, outcome.report.total_cycles() as f64);
        }
    }

    println!(
        "{}",
        series_table("Execution time, fine granularity / high concurrency", "cycles", &series)
    );

    // Locate the crossover: the smallest window count where SP beats NS.
    let ns = &series[0];
    let sp = &series[2];
    let crossover = windows.iter().find(|&&w| sp.at(w).unwrap() < ns.at(w).unwrap());
    match crossover {
        Some(w) => println!("SP overtakes NS at {w} windows"),
        None => println!("no crossover within the sweep"),
    }
    Ok(())
}
