//! # regwin — Multiple Threads in Cyclic Register Windows
//!
//! A complete, executable reproduction of *"Multiple Threads in Cyclic
//! Register Windows"* (Yasuo Hidaka, Hanpei Koike, Hidehiko Tanaka —
//! **ISCA 1993**): the proposed window-management algorithm, the two
//! baseline schemes, the SPARC-like register-window substrate they run
//! on, the multi-threaded runtime and spell-checker workload of the
//! paper's evaluation, and drivers regenerating every table and figure.
//!
//! ## The idea being reproduced
//!
//! Overlapping register windows make procedure calls fast but context
//! switches slow — unless several threads can *share* the window buffer.
//! Sharing breaks the conventional underflow handler, which restores a
//! missing caller window *below* the current one and therefore has to
//! spill other threads' windows from their stack-top end. The paper's
//! one-line fix: restore the caller **into the slot the callee used**
//! (the callee is dead at that point). Underflow then never spills, and
//! plain cyclic windows can host many threads with no extra hardware.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`machine`] | the window-file simulator: CWP, WIM, overlap, traps, cost model |
//! | [`traps`] | trap handlers + the NS / SNP / SP schemes |
//! | [`rt`] | non-preemptive runtime: streams, schedulers, trace record/replay |
//! | [`spell`] | the 7-thread spell-checker workload + synthetic corpus |
//! | [`cluster`] | discrete-event multi-PE simulation over a contended shared bus |
//! | [`core`] | experiment drivers for every table and figure |
//! | [`sweep`] | parallel, cached, observable experiment orchestration |
//! | [`gen`] | seeded workload generator + schedule-fuzzing differential oracle |
//! | [`asm`] | SPARC-subset assembler/interpreter on the window machine |
//!
//! ## Quick start
//!
//! ```rust
//! use regwin::prelude::*;
//!
//! # fn main() -> Result<(), regwin::rt::RtError> {
//! // Run the paper's workload under the proposed SP scheme on a
//! // 7-window SPARC-like CPU (the S-20 had 7 windows).
//! let pipeline = SpellPipeline::new(SpellConfig::small());
//! let outcome = pipeline.run(7, SchemeKind::Sp)?;
//! println!(
//!     "{} cycles, {} context switches, trap probability {:.4}",
//!     outcome.report.total_cycles(),
//!     outcome.report.stats.context_switches,
//!     outcome.report.trap_probability(),
//! );
//! // The simulated pipeline reports exactly what a sequential
//! // reference implementation reports:
//! assert_eq!(outcome.sorted_misspellings(), pipeline.expected_sorted());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use regwin_asm as asm;
pub use regwin_cluster as cluster;
pub use regwin_core as core;
pub use regwin_gen as gen;
pub use regwin_machine as machine;
pub use regwin_rt as rt;
pub use regwin_serve as serve;
pub use regwin_spell as spell;
pub use regwin_sweep as sweep;
pub use regwin_traps as traps;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use regwin_cluster::{run_spell_cluster, ClusterConfig, PeConfig};
    pub use regwin_core::{Behavior, Concurrency, Granularity};
    pub use regwin_machine::{
        CostModel, Machine, MachineConfig, SchemeKind, ThreadId, TimingKind, WindowIndex,
    };
    pub use regwin_rt::{Ctx, RtError, RunReport, SchedulingPolicy, Simulation};
    pub use regwin_spell::{CorpusSpec, SpellConfig, SpellPipeline};
    pub use regwin_sweep::{SweepConfig, SweepEngine};
    pub use regwin_traps::{build_scheme, Cpu, NsScheme, Scheme, SnpScheme, SpScheme};
}
